// Package incr maintains live published views under database deltas:
// instead of re-running the transducer from scratch after every
// mutation, a View repairs exactly the damaged part of its tree.
//
// The soundness argument is the paper's determinism result
// (Proposition 1(1)): over a fixed database, a configuration
// (state, tag, register) completely determines the subtree it
// generates. A delta leaves a node's subtree untouchable only through
// its rule queries, so a rule whose queries never mention a mutated
// relation produces the same children as before (its register and the
// untouched relations are its only inputs), and a child whose
// configuration key survives a dirty parent's re-expansion unchanged
// roots a subtree identical to what a full rebuild would generate —
// every ancestor configuration on its path is also unchanged, so the
// ancestor stop condition resolves identically too. Repair therefore:
//
//  1. computes the DIRTY RULES — (state, tag) pairs whose item queries
//     mention a relation the effective delta touched;
//  2. walks the tree top-down, re-expanding only nodes governed by
//     dirty rules, matching the new child specs against the old
//     children by configuration key to reuse surviving subtrees;
//  3. expands genuinely new children through pt.RestoreStepRun with the
//     view's memo, which still holds every result whose query the
//     delta could not have changed (eval.Memo.InvalidateRelations).
//
// When the damage estimate (live nodes governed by dirty rules) exceeds
// a configurable fraction of the tree, repair degenerates to walking
// everything and the View falls back to a full rebuild — still through
// the selectively-invalidated memo, so even the fallback is far cheaper
// than a cold run.
package incr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"ptx/internal/eval"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/xmltree"
)

// DefaultRebuildThreshold is the damage fraction above which Apply
// abandons surgical repair for a full rebuild: walking a mostly-dirty
// tree costs more bookkeeping than re-deriving it through the memo.
const DefaultRebuildThreshold = 0.5

// historyCap bounds the change-report ring buffer a View keeps for
// watchers; maxReportPaths bounds the damage paths in one report.
const (
	historyCap     = 64
	maxReportPaths = 32
)

// ErrBroken is returned by Snapshot when a failed repair (and failed
// rebuild) left the view unusable; the next successful Apply heals it.
var ErrBroken = errors.New("incr: view broken by a failed repair; next Apply rebuilds")

// Options configures a View.
type Options struct {
	// RebuildThreshold is the damage fraction triggering full rebuild:
	// 0 selects DefaultRebuildThreshold, negative disables the fallback
	// (always repair surgically), values ≥ 1 effectively disable it too.
	RebuildThreshold float64
	// CacheSize bounds the view's memo (0 = eval.DefaultMemoSize).
	CacheSize int
	// Run supplies budgets (MaxNodes, MaxDepth, Limits, Faults) for the
	// initial build, repairs, and rebuilds. Cache, CacheSize, Memo and
	// Workers are owned by the view and ignored.
	Run pt.Options
}

type ruleKey struct{ state, tag string }

// nodeMeta is the per-node bookkeeping the tree itself cannot carry:
// finalization erases State, and the stop condition's verdict is not
// recorded anywhere else. stopped nodes never re-expand (their verdict
// depends only on path configurations, which reuse preserves).
type nodeMeta struct {
	state   string
	stopped bool
}

// Report describes what one Apply did; watchers receive these.
type Report struct {
	Version     uint64   `json:"version"`
	Delta       string   `json:"delta"`
	Effective   int      `json:"effective_ops"`
	FullRebuild bool     `json:"full_rebuild"`
	Dirty       int      `json:"dirty"`   // nodes re-expanded in place
	Fresh       int      `json:"fresh"`   // nodes newly built
	Dropped     int      `json:"dropped"` // nodes discarded
	Nodes       int      `json:"nodes"`   // live nodes after the apply
	QueriesRun  int      `json:"queries_run"`
	Paths       []string `json:"paths,omitempty"` // canonical paths of changed-subtree roots
	Truncated   bool     `json:"paths_truncated,omitempty"`
}

// ViewStats is a cheap point-in-time summary.
type ViewStats struct {
	Version      uint64
	Nodes        int   // live nodes in the tree
	Expandable   int   // non-text, non-stopped nodes (damage-estimate base)
	QueriesTotal int64 // rule queries evaluated across build + all applies
	Broken       bool
}

// View is a published tree kept consistent with a mutable database
// instance. The View OWNS both its instance and its memo: callers must
// mutate the database only through Apply. All methods are safe for
// concurrent use; Apply serializes against readers, so a render never
// observes a half-repaired tree.
type View struct {
	mu   sync.RWMutex
	tr   *pt.Transducer
	inst *relation.Instance
	memo *eval.Memo
	opts Options

	tree   *xmltree.Tree
	meta   map[*xmltree.Node]nodeMeta
	counts map[ruleKey]int // live expandable nodes per (state, tag)
	total  int             // Σ counts

	relRules map[string][]ruleKey // base relation → rules whose queries mention it

	version uint64
	queries int64
	history []*Report
	notify  chan struct{}
	broken  bool
}

// NewView builds the initial tree for tr over inst and returns the live
// view. Ownership of inst transfers to the view — clone before calling
// if the caller keeps mutating its copy.
func NewView(ctx context.Context, tr *pt.Transducer, inst *relation.Instance, opts Options) (*View, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	v := &View{
		tr:       tr,
		inst:     inst,
		memo:     eval.NewMemo(opts.CacheSize),
		opts:     opts,
		relRules: make(map[string][]ruleKey),
		notify:   make(chan struct{}),
	}
	v.memo.BindInstance(inst)
	for _, r := range tr.Rules() {
		rk := ruleKey{r.State, r.Tag}
		seen := make(map[string]bool)
		for _, it := range r.Items {
			for _, rel := range logic.Relations(it.Query.F) {
				if rel == pt.RegRel || seen[rel] {
					continue
				}
				seen[rel] = true
				v.relRules[rel] = append(v.relRules[rel], rk)
			}
		}
	}
	if err := v.rebuild(ctx); err != nil {
		return nil, err
	}
	v.version = 1
	return v, nil
}

// runOpts derives the pt options for builds and frontier expansions:
// caller budgets, view-owned cache.
func (v *View) runOpts() pt.Options {
	o := v.opts.Run
	o.Workers = 0
	o.Cache = pt.CacheQueries
	o.CacheSize = 0
	o.Memo = v.memo
	return o
}

func (v *View) threshold() float64 {
	if v.opts.RebuildThreshold == 0 {
		return DefaultRebuildThreshold
	}
	return v.opts.RebuildThreshold
}

// rebuild re-derives the whole tree from the current instance. The new
// tree and bookkeeping are committed only on success, so a failed
// rebuild leaves the previous (possibly broken) state for the caller to
// flag.
func (v *View) rebuild(ctx context.Context) error {
	sr, err := v.tr.NewStepRun(ctx, v.inst, v.runOpts())
	if err != nil {
		return err
	}
	defer sr.Close()
	meta := make(map[*xmltree.Node]nodeMeta)
	counts := make(map[ruleKey]int)
	total := 0
	sr.Observe(func(ev pt.StepEvent) {
		meta[ev.Node] = nodeMeta{state: ev.State, stopped: ev.Stopped}
		if ev.Node.Tag != xmltree.TextTag && !ev.Stopped {
			counts[ruleKey{ev.State, ev.Node.Tag}]++
			total++
		}
	})
	res, err := sr.Run()
	if err != nil {
		return err
	}
	v.tree, v.meta, v.counts, v.total = res.Xi, meta, counts, total
	v.queries += int64(res.Stats.QueriesRun)
	v.broken = false
	return nil
}

// Apply validates and applies d to the view's instance, then repairs
// the tree. It returns the report describing what changed. On an
// ineffective delta (every op a no-op) the version does not move and
// watchers are not woken. If repair AND the rebuild fallback both fail
// (cancellation, budget), the view is flagged broken and the error is
// returned; the next successful Apply heals it.
func (v *View) Apply(ctx context.Context, d *relation.Delta) (*Report, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	eff, err := v.inst.Apply(d)
	if err != nil {
		return nil, err
	}
	if eff.Empty() && !v.broken {
		return &Report{Version: v.version, Delta: d.String(), Nodes: len(v.meta)}, nil
	}

	// Reconcile the memo: drop results whose query reads a mutated
	// relation, then re-pin to the new instance version so the staleness
	// guard keeps the survivors.
	v.memo.InvalidateRelations(eff.Rels())
	v.memo.BindInstance(v.inst)

	rep := &Report{Delta: eff.String(), Effective: eff.Len()}
	dirty := make(map[ruleKey]bool)
	for _, rel := range eff.Rels() {
		for _, rk := range v.relRules[rel] {
			dirty[rk] = true
		}
	}
	est := 0
	for rk := range dirty {
		est += v.counts[rk]
	}
	th := v.threshold()
	full := v.broken ||
		(th >= 0 && v.total > 0 && float64(est) > th*float64(v.total))
	if !full && len(dirty) > 0 {
		if err := v.repair(ctx, dirty, rep); err != nil {
			// The tree may be half-repaired; only a rebuild restores the
			// invariant.
			v.broken = true
			full = true
		}
	}
	if full {
		before := v.queries
		if err := v.rebuild(ctx); err != nil {
			v.broken = true
			return nil, fmt.Errorf("incr: rebuild after delta %s: %w", eff, err)
		}
		rep.FullRebuild = true
		rep.Dirty, rep.Fresh, rep.Dropped = 0, 0, 0
		rep.QueriesRun = int(v.queries - before)
		rep.Paths = []string{v.rootPath()}
		rep.Truncated = false
	} else {
		v.queries += int64(rep.QueriesRun)
	}
	v.version++
	rep.Version = v.version
	rep.Nodes = len(v.meta)
	v.history = append(v.history, rep)
	if len(v.history) > historyCap {
		v.history = v.history[len(v.history)-historyCap:]
	}
	close(v.notify)
	v.notify = make(chan struct{})
	return rep, nil
}

func (v *View) rootPath() string {
	return "/" + v.tree.Root.Tag + "[1]"
}

func addPath(rep *Report, path string) {
	if len(rep.Paths) >= maxReportPaths {
		rep.Truncated = true
		return
	}
	rep.Paths = append(rep.Paths, path)
}

// repair is the surgical path: a top-down walk that re-expands exactly
// the nodes governed by dirty rules, reusing every child whose
// configuration key survives and collecting genuinely new children as a
// frontier for RestoreStepRun.
func (v *View) repair(ctx context.Context, dirty map[ruleKey]bool, rep *Report) error {
	ctl := runctl.New(ctx, runctl.Limits{})
	base := eval.NewEnv(v.inst).WithControl(ctl)
	if v.opts.Run.NoPlan {
		base = base.WithoutPlanner()
	}
	anc := make(map[string]bool)
	fresh := make(map[*xmltree.Node]bool)
	var pending []pt.PendingConfig

	// Iterative DFS: exit items pop the configuration key off the
	// ancestor set, so the walk survives the depth-10⁶ regime.
	type item struct {
		n     *xmltree.Node
		depth int
		path  string
		key   string // exit items: key to remove from anc
		exit  bool
	}
	stack := []item{{n: v.tree.Root, depth: 1, path: v.rootPath()}}
	steps := 0
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if it.exit {
			delete(anc, it.key)
			continue
		}
		if steps++; steps%1024 == 0 {
			if err := ctl.Canceled(); err != nil {
				return err
			}
		}
		n := it.n
		if n.Tag == xmltree.TextTag || fresh[n] {
			continue
		}
		m, ok := v.meta[n]
		if !ok {
			return fmt.Errorf("incr: node <%s> at %s has no metadata", n.Tag, it.path)
		}
		if m.stopped {
			continue
		}
		key := pt.ConfigKey(m.state, n.Tag, n.Reg)
		if dirty[ruleKey{m.state, n.Tag}] {
			changed, err := v.reexpand(n, m, key, it.depth, base, anc, fresh, &pending, rep)
			if err != nil {
				return err
			}
			if changed {
				addPath(rep, it.path)
			}
		}
		if len(n.Children) == 0 {
			continue
		}
		anc[key] = true
		stack = append(stack, item{exit: true, key: key})
		// Children are pushed in reverse so the walk visits them in
		// document order, keeping report paths deterministic.
		paths := childPaths(it.path, n.Children)
		for i := len(n.Children) - 1; i >= 0; i-- {
			stack = append(stack, item{n: n.Children[i], depth: it.depth + 1, path: paths[i]})
		}
	}

	if len(pending) == 0 {
		return nil
	}
	sr, err := v.tr.RestoreStepRun(ctx, v.inst, v.runOpts(), v.tree.Root, pending, pt.Stats{})
	if err != nil {
		return err
	}
	defer sr.Close()
	sr.Observe(func(ev pt.StepEvent) {
		v.meta[ev.Node] = nodeMeta{state: ev.State, stopped: ev.Stopped}
		if ev.Node.Tag != xmltree.TextTag && !ev.Stopped {
			v.counts[ruleKey{ev.State, ev.Node.Tag}]++
			v.total++
		}
		rep.Fresh++
	})
	res, err := sr.Run()
	if err != nil {
		return err
	}
	rep.QueriesRun += res.Stats.QueriesRun
	return nil
}

// childPaths computes the canonical /tag[i] path of each child (index
// counts same-tag siblings, 1-based, in document order).
func childPaths(parent string, children []*xmltree.Node) []string {
	idx := make(map[string]int, len(children))
	out := make([]string, len(children))
	for i, c := range children {
		idx[c.Tag]++
		out[i] = parent + "/" + c.Tag + "[" + strconv.Itoa(idx[c.Tag]) + "]"
	}
	return out
}

// reexpand re-derives the children of a dirty node and reports whether
// the child list actually changed. Old children are matched by
// configuration key and reused by reference (sound by determinism —
// see the package comment); unmatched specs become frontier entries for
// the follow-up StepRun; unmatched old children are dropped.
func (v *View) reexpand(n *xmltree.Node, m nodeMeta, key string, depth int, base *eval.Env, anc map[string]bool, fresh map[*xmltree.Node]bool, pending *[]pt.PendingConfig, rep *Report) (bool, error) {
	specs, q, err := v.tr.ExpandConfig(m.state, n.Tag, n.Reg, base, v.memo)
	rep.QueriesRun += q
	if err != nil {
		return false, err
	}
	rep.Dirty++
	old := n.Children
	if len(specs) == 0 && len(old) == 0 {
		return false, nil
	}
	oldByKey := make(map[string][]*xmltree.Node, len(old))
	for _, c := range old {
		cm, ok := v.meta[c]
		if !ok {
			return false, fmt.Errorf("incr: child <%s> of <%s> has no metadata", c.Tag, n.Tag)
		}
		ck := pt.ConfigKey(cm.state, c.Tag, c.Reg)
		oldByKey[ck] = append(oldByKey[ck], c)
	}

	// Ancestor key set for fresh children: the walk's current set plus
	// this node's own key.
	var ancKeys []string
	lazyAnc := func() []string {
		if ancKeys == nil {
			ancKeys = make([]string, 0, len(anc)+1)
			for k := range anc {
				ancKeys = append(ancKeys, k)
			}
			ancKeys = append(ancKeys, key)
		}
		return ancKeys
	}

	changed := len(specs) != len(old)
	children := make([]*xmltree.Node, 0, len(specs))
	for i, sp := range specs {
		sk := pt.ConfigKey(sp.State, sp.Tag, sp.Reg)
		if q := oldByKey[sk]; len(q) > 0 {
			c := q[0]
			oldByKey[sk] = q[1:]
			children = append(children, c)
			if i >= len(old) || old[i] != c {
				changed = true
			}
			continue
		}
		f := &xmltree.Node{Tag: sp.Tag, State: sp.State, Reg: sp.Reg}
		fresh[f] = true
		*pending = append(*pending, pt.PendingConfig{Node: f, Ancestors: lazyAnc(), Depth: depth + 1})
		children = append(children, f)
		changed = true
	}
	for _, q := range oldByKey {
		for _, c := range q {
			v.dropSubtree(c, rep)
			changed = true
		}
	}
	n.Children = children
	return changed, nil
}

// dropSubtree forgets a discarded subtree's bookkeeping so the meta map
// cannot leak across long delta sequences.
func (v *View) dropSubtree(root *xmltree.Node, rep *Report) {
	stack := []*xmltree.Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if m, ok := v.meta[n]; ok {
			if n.Tag != xmltree.TextTag && !m.stopped {
				v.counts[ruleKey{m.state, n.Tag}]--
				v.total--
			}
			delete(v.meta, n)
		}
		rep.Dropped++
		stack = append(stack, n.Children...)
	}
}

// Version returns the view version: 1 after the initial build, +1 per
// effective Apply.
func (v *View) Version() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.version
}

// Stats returns a point-in-time summary.
func (v *View) Stats() ViewStats {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return ViewStats{
		Version:      v.version,
		Nodes:        len(v.meta),
		Expandable:   v.total,
		QueriesTotal: v.queries,
		Broken:       v.broken,
	}
}

// Snapshot renders the current tree (canonical or XML form, virtual
// tags spliced) and returns the bytes with the version they correspond
// to. Rendering holds the read lock, so the bytes are never torn across
// a concurrent Apply.
func (v *View) Snapshot(canonical bool) ([]byte, uint64, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.broken {
		return nil, v.version, ErrBroken
	}
	var buf bytes.Buffer
	var err error
	if canonical {
		err = v.tree.WriteCanonicalVirtual(&buf, v.tr.Virtual)
	} else {
		err = v.tree.WriteXMLVirtual(&buf, v.tr.Virtual)
	}
	if err != nil {
		return nil, v.version, err
	}
	return buf.Bytes(), v.version, nil
}

// Changes returns the buffered reports with Version > after, a channel
// closed on the next effective Apply (for long-poll/SSE waiters), and
// whether the buffer reaches back far enough to make the list complete
// (false means the watcher missed reports and should resync with a
// fresh Snapshot).
func (v *View) Changes(after uint64) (reports []*Report, wait <-chan struct{}, complete bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	// Version 1 is the initial build and never has a report, so a cursor
	// below it asks for exactly what a cursor AT it does.
	if after < 1 {
		after = 1
	}
	complete = true
	if len(v.history) > 0 {
		oldest := v.history[0].Version
		if after+1 < oldest && after < v.version {
			complete = false
		}
	} else if after < v.version && v.version > 1 {
		complete = false
	}
	for _, r := range v.history {
		if r.Version > after {
			reports = append(reports, r)
		}
	}
	return reports, v.notify, complete
}
