// BenchmarkIncrementalDelta quantifies the point of the incr package:
// a 1-tuple delta repaired in place runs far fewer rule queries than
// the full rebuild every publish costs today. The companion guard test
// pins the acceptance ratio (>=10x) so a regression fails CI rather
// than just drifting a chart.
package incr_test

import (
	"context"
	"testing"

	"ptx/internal/families"
	"ptx/internal/incr"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// deltaWorkload is one benchmark scenario: a (transducer, instance)
// pair plus the 1-tuple toggle applied on odd/even iterations so the
// database returns to its base state every two deltas.
type deltaWorkload struct {
	name string
	tr   *pt.Transducer
	inst *relation.Instance
	ins  *relation.Delta // applied on even iterations
	del  *relation.Delta // applied on odd iterations (the inverse)
	opts incr.Options
}

func deltaWorkloads() []deltaWorkload {
	// diamond-10: the Proposition 1(3) blowup family. Every rule reads
	// R, so a 1-tuple R delta dirties 100% of rules and forces the
	// surgical path (threshold -1) to re-derive every node's children —
	// the memo still collapses that to one query per distinct
	// configuration, versus one query per NODE for the uncached rebuild.
	d10 := deltaWorkload{
		name: "diamond-10",
		tr:   families.UnfoldTransducer(),
		inst: families.DiamondChain(10),
		ins:  (&relation.Delta{}).Insert("R", "a000", "w_bench"),
		del:  (&relation.Delta{}).Delete("R", "a000", "w_bench"),
		opts: incr.Options{RebuildThreshold: -1},
	}
	// catalog-wide: 120 products. A 1-tuple product delta dirties only
	// the root rule; every untouched product subtree is reused by
	// reference, so repair costs O(new subtree), not O(catalog).
	cat := deltaWorkload{
		name: "catalog-wide",
		tr:   catalogTransducer(),
		inst: catalogInstance(120, 2),
		ins:  (&relation.Delta{}).Insert("product", "skuNEW", "Item NEW", "cat000"),
		del:  (&relation.Delta{}).Delete("product", "skuNEW", "Item NEW", "cat000"),
	}
	return []deltaWorkload{d10, cat}
}

// fullRebuildQueries is the baseline: what one publish costs without a
// live view (CacheOff — no cross-publish state survives today).
func fullRebuildQueries(tb testing.TB, w deltaWorkload) int {
	tb.Helper()
	inst := w.inst.Clone()
	if _, err := inst.Apply(w.ins); err != nil {
		tb.Fatal(err)
	}
	res, err := w.tr.Run(inst, pt.Options{Cache: pt.CacheOff})
	if err != nil {
		tb.Fatal(err)
	}
	return res.Stats.QueriesRun
}

// incrToggle drives n alternating insert/delete deltas through a fresh
// view and returns total queries run and the worst single delta.
func incrToggle(tb testing.TB, w deltaWorkload, n int) (total, worst int) {
	tb.Helper()
	v, err := incr.NewView(context.Background(), w.tr, w.inst.Clone(), w.opts)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d := w.ins
		if i%2 == 1 {
			d = w.del
		}
		rep, err := v.Apply(context.Background(), d)
		if err != nil {
			tb.Fatalf("delta %d: %v", i, err)
		}
		total += rep.QueriesRun
		if rep.QueriesRun > worst {
			worst = rep.QueriesRun
		}
	}
	return total, worst
}

func BenchmarkIncrementalDelta(b *testing.B) {
	for _, w := range deltaWorkloads() {
		b.Run(w.name, func(b *testing.B) {
			base := fullRebuildQueries(b, w)
			b.ResetTimer()
			total, worst := incrToggle(b, w, b.N)
			b.ReportMetric(float64(total)/float64(b.N), "queries/delta")
			b.ReportMetric(float64(worst), "worst-queries/delta")
			b.ReportMetric(float64(base), "rebuild-queries")
			if worst > 0 {
				b.ReportMetric(float64(base)/float64(worst), "speedup-x")
			}
		})
	}
}

// TestIncrementalQueryAdvantage pins the acceptance criterion: on both
// benchmark workloads, the WORST 1-tuple delta runs at least 10x fewer
// queries than the uncached full rebuild it replaces.
func TestIncrementalQueryAdvantage(t *testing.T) {
	for _, w := range deltaWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			base := fullRebuildQueries(t, w)
			_, worst := incrToggle(t, w, 8)
			t.Logf("%s: rebuild=%d queries, worst incr delta=%d", w.name, base, worst)
			if worst*10 > base {
				t.Fatalf("incremental advantage below 10x: worst delta %d queries vs rebuild %d", worst, base)
			}
		})
	}
}
