// The seeded differential suite: for seeded (spec, db, delta-sequence)
// triples, incremental repair must stay byte-identical to a
// from-scratch run after EVERY step. Failures dump the replayable
// triple to CHAOS_ARTIFACT_DIR, PR-4 chaos style.
package incr_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptx/internal/families"
	"ptx/internal/incr"
	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/relation"
)

// diffSeeds matches the acceptance criterion batch size; the race run
// shrinks it (coverage is per-shape, not per-seed).
func diffSeeds() int {
	if raceEnabled {
		return 48
	}
	return 120
}

// caseBudget caps both the view and the oracle: a seeded delta sequence
// on the recursive families can legitimately explode the unfolding, and
// the suite's business is equivalence, not size.
const caseBudget = 50_000

// incrCase is one seeded scenario, derived entirely from its seed.
type incrCase struct {
	Seed     int64
	Workload string
	NoFall   bool // disable the rebuild fallback (force surgical repair)
	Steps    []*relation.Delta
}

func (c incrCase) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d workload=%s nofall=%v\n", c.Seed, c.Workload, c.NoFall)
	for i, d := range c.Steps {
		fmt.Fprintf(&sb, "step %d: %s\n", i, d)
	}
	return sb.String()
}

// workloadFor returns the transducer and base instance for a case.
func workloadFor(name string) (*pt.Transducer, *relation.Instance) {
	switch name {
	case "tau1":
		return registrar.Tau1(), registrar.SampleInstance()
	case "tau3":
		return registrar.Tau3(), registrar.SampleInstance()
	case "catalog":
		return catalogTransducer(), catalogInstance(12, 2)
	case "unfold":
		return families.UnfoldTransducer(), families.DiamondChain(3)
	case "counter":
		return families.CounterTransducer(), families.CounterInstance(2)
	default:
		panic("unknown workload " + name)
	}
}

// valuePool is the sampling space for delta tuples: existing values
// keep deletions and joining inserts likely, a few fresh tokens grow
// the domain without densifying recursive unfoldings into a blowup.
func valuePool(inst *relation.Instance) []string {
	vs := inst.ActiveDomain()
	pool := make([]string, 0, len(vs)+3)
	for _, v := range vs {
		pool = append(pool, string(v))
	}
	return append(pool, "w1", "w2", "w3")
}

func newIncrCase(seed int64) incrCase {
	rng := rand.New(rand.NewSource(seed))
	c := incrCase{
		Seed:     seed,
		Workload: []string{"tau1", "tau3", "catalog", "unfold", "counter"}[rng.Intn(5)],
		NoFall:   rng.Intn(2) == 0,
	}
	_, inst := workloadFor(c.Workload)
	pool := valuePool(inst)
	names := inst.Schema().Names()
	steps := 2 + rng.Intn(5)
	for s := 0; s < steps; s++ {
		d := &relation.Delta{}
		for o, ops := 0, 1+rng.Intn(3); o < ops; o++ {
			rel := names[rng.Intn(len(names))]
			arity, _ := inst.Schema().Arity(rel)
			switch {
			case rng.Intn(2) == 0: // delete, usually of an existing tuple
				if ts := inst.Rel(rel).Tuples(); len(ts) > 0 && rng.Intn(4) > 0 {
					d.DeleteTuple(rel, ts[rng.Intn(len(ts))])
					continue
				}
				fallthrough
			default:
				vals := make([]string, arity)
				for i := range vals {
					vals[i] = pool[rng.Intn(len(pool))]
				}
				if rng.Intn(2) == 0 {
					d.Insert(rel, vals...)
				} else {
					d.Delete(rel, vals...)
				}
			}
		}
		// Track the evolving instance so later deletions can target
		// tuples inserted by earlier steps.
		if _, err := inst.Apply(d); err != nil {
			panic(err)
		}
		c.Steps = append(c.Steps, d)
	}
	return c
}

func dumpIncrArtifact(t *testing.T, c incrCase, violation string) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	_, base := workloadFor(c.Workload)
	desc := fmt.Sprintf("%s\nbase instance:\n%s\nviolation=%s\n", c, base, violation)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("incr-%d.txt", c.Seed)), []byte(desc), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// runIncrCase drives one seeded scenario; it returns a violation
// description or "" when the case holds.
func runIncrCase(t *testing.T, c incrCase) string {
	tr, oracle := workloadFor(c.Workload)
	opts := incr.Options{Run: pt.Options{MaxNodes: caseBudget}}
	if c.NoFall {
		opts.RebuildThreshold = -1
	}
	v, err := incr.NewView(context.Background(), tr, oracle.Clone(), opts)
	if err != nil {
		return fmt.Sprintf("initial build: %v", err)
	}
	for i, d := range c.Steps {
		_, applyErr := v.Apply(context.Background(), d)
		if _, err := oracle.Apply(d); err != nil {
			return fmt.Sprintf("step %d: oracle apply: %v", i, err)
		}
		ores, oerr := tr.Run(oracle, pt.Options{MaxNodes: caseBudget, Cache: pt.CacheQueries})
		if applyErr != nil {
			// A budget-killed repair is legitimate only if the scenario
			// actually outgrew the budget — which the oracle confirms —
			// and the view must KNOW it is broken, not serve stale bytes.
			if oerr == nil {
				return fmt.Sprintf("step %d: view failed (%v) but oracle ran fine", i, applyErr)
			}
			if _, _, serr := v.Snapshot(true); serr == nil {
				return fmt.Sprintf("step %d: broken view served a snapshot", i)
			}
			return "" // both sides outgrew the budget: case ends here
		}
		if oerr != nil {
			return "" // oracle outgrew the budget with a healthy view: ends
		}
		var sb strings.Builder
		if err := ores.Xi.WriteCanonicalVirtual(&sb, tr.Virtual); err != nil {
			return fmt.Sprintf("step %d: oracle serialize: %v", i, err)
		}
		got, _, err := v.Snapshot(true)
		if err != nil {
			return fmt.Sprintf("step %d: snapshot: %v", i, err)
		}
		if string(got) != sb.String() {
			return fmt.Sprintf("step %d (%s): view != rebuild\nview:    %s\nrebuild: %s", i, d, got, sb.String())
		}
		if nodes := v.Stats().Nodes; nodes != ores.Stats.Nodes {
			return fmt.Sprintf("step %d: meta tracks %d nodes, oracle tree has %d", i, nodes, ores.Stats.Nodes)
		}
	}
	return ""
}

func TestIncrementalDifferential(t *testing.T) {
	for seed := int64(1); seed <= int64(diffSeeds()); seed++ {
		c := newIncrCase(seed)
		t.Run(fmt.Sprintf("seed-%d-%s", seed, c.Workload), func(t *testing.T) {
			if v := runIncrCase(t, c); v != "" {
				dumpIncrArtifact(t, c, v)
				t.Fatalf("differential violation:\n%s\n%s", c, v)
			}
		})
	}
}
