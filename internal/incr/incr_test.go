// Core incremental-repair tests: every Apply must leave the view
// byte-identical to a from-scratch run over the mutated database (the
// determinism oracle), bookkeeping must not leak, and the rebuild
// fallback plus broken-view recovery must behave.
package incr_test

import (
	"context"
	"strings"
	"testing"

	"ptx/internal/families"
	"ptx/internal/incr"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/relation"
)

// catalogSchema/catalogTransducer model the wide-catalog workload: a
// flat root listing many products, each with a text name and its
// features. A 1-tuple product delta dirties ONLY the root rule, so
// repair reuses every untouched product subtree — the shape where
// incremental maintenance wins by the width of the catalog.
func catalogSchema() *relation.Schema {
	return relation.NewSchema().MustDeclare("product", 3).MustDeclare("feature", 2)
}

func catalogTransducer() *pt.Transducer {
	s, n, c, f := logic.Var("s"), logic.Var("n"), logic.Var("c"), logic.Var("f")
	t := pt.New("catalog", catalogSchema(), "q0", "catalog")
	t.DeclareTag("product", 2).DeclareTag("feat", 1).DeclareTag("text", 1)
	t.AddRule("q0", "catalog", pt.Item("qp", "product",
		logic.MustQuery([]logic.Var{s, n}, nil, logic.Ex([]logic.Var{c}, logic.R("product", s, n, c)))))
	t.AddRule("qp", "product",
		pt.Item("qt", "text", logic.MustQuery([]logic.Var{n}, nil,
			logic.Ex([]logic.Var{s}, logic.R(pt.RegRel, s, n)))),
		pt.Item("qf", "feat", logic.MustQuery([]logic.Var{f}, nil,
			logic.Ex([]logic.Var{s, n}, logic.Conj(logic.R(pt.RegRel, s, n), logic.R("feature", s, f))))))
	t.AddRule("qf", "feat", pt.Item("qt", "text",
		logic.MustQuery([]logic.Var{f}, nil, logic.R(pt.RegRel, f))))
	t.AddRule("qt", "text")
	return t
}

func catalogInstance(products, featsPer int) *relation.Instance {
	inst := relation.NewInstance(catalogSchema())
	for i := 0; i < products; i++ {
		sku := "sku" + pad3(i)
		inst.Add("product", sku, "Item "+pad3(i), "cat"+pad3(i%7))
		for j := 0; j < featsPer; j++ {
			inst.Add("feature", sku, "f"+pad3(j))
		}
	}
	return inst
}

func pad3(i int) string {
	d := []byte{'0' + byte(i/100%10), '0' + byte(i/10%10), '0' + byte(i%10)}
	return string(d)
}

// fullCanonical is the oracle: a from-scratch run over inst.
func fullCanonical(t *testing.T, tr *pt.Transducer, inst *relation.Instance) string {
	t.Helper()
	res, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	var sb strings.Builder
	if err := res.Xi.WriteCanonicalVirtual(&sb, tr.Virtual); err != nil {
		t.Fatalf("oracle serialize: %v", err)
	}
	return sb.String()
}

func viewCanonical(t *testing.T, v *incr.View) string {
	t.Helper()
	b, _, err := v.Snapshot(true)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return string(b)
}

// applyBoth drives the view and the oracle instance with the same delta
// and asserts byte identity.
func applyBoth(t *testing.T, v *incr.View, tr *pt.Transducer, oracle *relation.Instance, d *relation.Delta) *incr.Report {
	t.Helper()
	rep, err := v.Apply(context.Background(), d)
	if err != nil {
		t.Fatalf("Apply(%s): %v", d, err)
	}
	if _, err := oracle.Apply(d); err != nil {
		t.Fatalf("oracle Apply(%s): %v", d, err)
	}
	want := fullCanonical(t, tr, oracle)
	if got := viewCanonical(t, v); got != want {
		t.Fatalf("after %s: view diverged from full rebuild\nview:   %s\nrebuild: %s", d, got, want)
	}
	return rep
}

func newView(t *testing.T, tr *pt.Transducer, inst *relation.Instance, opts incr.Options) *incr.View {
	t.Helper()
	v, err := incr.NewView(context.Background(), tr, inst.Clone(), opts)
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	return v
}

func TestViewMatchesFullRunTau1(t *testing.T) {
	tr := registrar.Tau1()
	oracle := registrar.SampleInstance()
	v := newView(t, tr, oracle, incr.Options{})
	if got, want := viewCanonical(t, v), fullCanonical(t, tr, oracle); got != want {
		t.Fatalf("initial build diverged:\n%s\n%s", got, want)
	}
	deltas := []*relation.Delta{
		(&relation.Delta{}).Insert("course", "CS500", "Distributed Systems", "CS"),
		(&relation.Delta{}).Insert("prereq", "CS500", "CS401"),
		(&relation.Delta{}).Delete("prereq", "CS401", "CS301"),
		(&relation.Delta{}).Delete("course", "CS301", "Algorithms", "CS").Insert("course", "CS301", "Algorithms II", "CS"),
		(&relation.Delta{}).Delete("course", "CS500", "Distributed Systems", "CS"),
	}
	for i, d := range deltas {
		rep := applyBoth(t, v, tr, oracle, d)
		if rep.Version != uint64(i)+2 {
			t.Fatalf("delta %d: version %d, want %d", i, rep.Version, i+2)
		}
	}
}

func TestViewMatchesFullRunUnfold(t *testing.T) {
	tr := families.UnfoldTransducer()
	oracle := families.DiamondChain(4)
	// The unfold rule reads R at every node, so any R-delta dirties the
	// whole tree; disable the fallback to exercise the surgical path.
	v := newView(t, tr, oracle, incr.Options{RebuildThreshold: -1})
	for _, d := range []*relation.Delta{
		(&relation.Delta{}).Insert("R", "a004", "z001"),
		(&relation.Delta{}).Insert("R", "z001", "a000"), // creates a cycle → stop condition
		(&relation.Delta{}).Delete("R", "a000", "b000_1"),
		(&relation.Delta{}).Delete("R", "z001", "a000").Delete("R", "a004", "z001"),
	} {
		rep := applyBoth(t, v, tr, oracle, d)
		if rep.FullRebuild {
			t.Fatalf("delta %s: fell back to rebuild with threshold -1", d)
		}
	}
}

func TestViewMatchesFullRunCatalog(t *testing.T) {
	tr := catalogTransducer()
	oracle := catalogInstance(20, 2)
	v := newView(t, tr, oracle, incr.Options{})
	rep := applyBoth(t, v, tr, oracle,
		(&relation.Delta{}).Insert("product", "sku999", "Late Addition", "cat001"))
	if rep.FullRebuild {
		t.Fatal("1-product delta should not trigger a rebuild")
	}
	// Only the root is dirty: one re-expansion plus the fresh product
	// subtree. The other 20 product subtrees are reused, so the query
	// count stays far below a rebuild's.
	if rep.Dirty != 1 {
		t.Fatalf("Dirty = %d, want 1 (the root)", rep.Dirty)
	}
	if rep.QueriesRun >= 10 {
		t.Fatalf("QueriesRun = %d for a 1-tuple delta, want a handful", rep.QueriesRun)
	}
	if len(rep.Paths) != 1 || rep.Paths[0] != "/catalog[1]" {
		t.Fatalf("Paths = %v, want [/catalog[1]]", rep.Paths)
	}
	// Feature deltas dirty only product rules: one fresh feat subtree
	// appears, and a later deletion drops it again.
	rep = applyBoth(t, v, tr, oracle, (&relation.Delta{}).Insert("feature", "sku003", "f999"))
	if rep.FullRebuild || rep.Fresh == 0 || rep.Dropped != 0 {
		t.Fatalf("feature insert: FullRebuild=%v Fresh=%d Dropped=%d", rep.FullRebuild, rep.Fresh, rep.Dropped)
	}
	rep = applyBoth(t, v, tr, oracle, (&relation.Delta{}).Delete("feature", "sku003", "f999"))
	if rep.FullRebuild || rep.Dropped == 0 {
		t.Fatalf("feature delete: FullRebuild=%v Dropped=%d", rep.FullRebuild, rep.Dropped)
	}
}

func TestNoopDeltaKeepsVersion(t *testing.T) {
	tr := registrar.Tau1()
	inst := registrar.SampleInstance()
	v := newView(t, tr, inst, incr.Options{})
	rep, err := v.Apply(context.Background(),
		(&relation.Delta{}).Insert("course", "CS401", "Compilers", "CS").Delete("prereq", "XX", "YY"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || rep.Effective != 0 {
		t.Fatalf("no-op delta: version=%d effective=%d", rep.Version, rep.Effective)
	}
	if _, wait, _ := v.Changes(1); wait == nil {
		t.Fatal("no wait channel")
	} else {
		select {
		case <-wait:
			t.Fatal("no-op delta woke watchers")
		default:
		}
	}
}

func TestInvalidDeltaRejected(t *testing.T) {
	tr := registrar.Tau1()
	inst := registrar.SampleInstance()
	v := newView(t, tr, inst, incr.Options{})
	before := viewCanonical(t, v)
	if _, err := v.Apply(context.Background(), (&relation.Delta{}).Insert("nope", "x")); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := v.Apply(context.Background(), (&relation.Delta{}).Insert("course", "only-one")); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if got := viewCanonical(t, v); got != before || v.Version() != 1 {
		t.Fatal("failed Apply mutated the view")
	}
}

// The unfold family dirties 100% of the tree on any R-delta, so the
// default threshold must route it to a full rebuild — and the rebuild
// goes through the memo, so it is still cheap.
func TestRebuildFallbackTriggers(t *testing.T) {
	tr := families.UnfoldTransducer()
	oracle := families.DiamondChain(4)
	v := newView(t, tr, oracle, incr.Options{})
	rep := applyBoth(t, v, tr, oracle, (&relation.Delta{}).Insert("R", "a004", "z001"))
	if !rep.FullRebuild {
		t.Fatal("100% damage should exceed the default threshold")
	}
	if len(rep.Paths) != 1 || rep.Paths[0] != "/r[1]" {
		t.Fatalf("rebuild paths = %v", rep.Paths)
	}
}

// Bookkeeping must not leak: after a delta storm, the meta map tracks
// exactly the live tree.
func TestMetaDoesNotLeak(t *testing.T) {
	tr := catalogTransducer()
	oracle := catalogInstance(10, 2)
	v := newView(t, tr, oracle, incr.Options{})
	for i := 0; i < 30; i++ {
		sku := "skuX" + pad3(i%5)
		d := (&relation.Delta{}).Insert("product", sku, "Churn", "cat000")
		if i%2 == 1 {
			d = (&relation.Delta{}).Delete("product", sku, "Churn", "cat000")
		}
		applyBoth(t, v, tr, oracle, d)
	}
	st := v.Stats()
	b, _, err := v.Snapshot(true)
	if err != nil || len(b) == 0 {
		t.Fatalf("snapshot: %v", err)
	}
	res, err := tr.Run(oracle, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != res.Stats.Nodes {
		t.Fatalf("meta tracks %d nodes, live tree has %d — leak or loss", st.Nodes, res.Stats.Nodes)
	}
}

// A budget-killed repair leaves the view broken; Snapshot says so with
// the typed error, and the next successful Apply heals it.
func TestBrokenViewRecovers(t *testing.T) {
	tr := catalogTransducer()
	oracle := catalogInstance(8, 1)
	v := newView(t, tr, oracle, incr.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the repair AND the rebuild fallback both die instantly
	if _, err := v.Apply(ctx, (&relation.Delta{}).Insert("product", "skuZ", "Doomed", "cat000")); err == nil {
		t.Fatal("canceled Apply reported success")
	}
	if _, _, err := v.Snapshot(true); err != incr.ErrBroken {
		t.Fatalf("broken view Snapshot err = %v, want ErrBroken", err)
	}
	if !v.Stats().Broken {
		t.Fatal("Stats().Broken = false")
	}

	// The delta WAS applied to the instance; heal with an empty delta.
	if _, err := oracle.Apply((&relation.Delta{}).Insert("product", "skuZ", "Doomed", "cat000")); err != nil {
		t.Fatal(err)
	}
	rep, err := v.Apply(context.Background(), &relation.Delta{})
	if err != nil {
		t.Fatalf("healing Apply: %v", err)
	}
	if !rep.FullRebuild {
		t.Fatal("healing Apply should rebuild")
	}
	if got, want := viewCanonical(t, v), fullCanonical(t, tr, oracle); got != want {
		t.Fatal("healed view diverged from oracle")
	}
}

func TestChangesAndNotify(t *testing.T) {
	tr := catalogTransducer()
	oracle := catalogInstance(5, 1)
	v := newView(t, tr, oracle, incr.Options{})

	reports, wait, complete := v.Changes(1)
	if len(reports) != 0 || !complete {
		t.Fatalf("fresh view Changes(1) = %d reports, complete=%v", len(reports), complete)
	}
	done := make(chan struct{})
	go func() { <-wait; close(done) }()
	applyBoth(t, v, tr, oracle, (&relation.Delta{}).Insert("product", "skuN", "New", "cat000"))
	<-done

	reports, _, complete = v.Changes(1)
	if len(reports) != 1 || !complete || reports[0].Version != 2 {
		t.Fatalf("Changes(1) after one delta: %d reports complete=%v", len(reports), complete)
	}
	// A watcher far behind a long history must be told to resync.
	for i := 0; i < 70; i++ {
		applyBoth(t, v, tr, oracle, (&relation.Delta{}).Insert("feature", "skuN", "f"+pad3(i)))
	}
	if _, _, complete = v.Changes(1); complete {
		t.Fatal("watcher beyond the history ring not told to resync")
	}
}
