// FuzzIncrementalEval is the coverage-guided arm of the differential
// suite: the byte stream decodes to a random (transducer, instance,
// delta-sequence) triple, and incremental repair must stay
// byte-identical to a from-scratch run after every applied delta.
package incr_test

import (
	"context"
	"strings"
	"testing"

	"ptx/internal/incr"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/value"
)

// fuzzBudget bounds both sides of the oracle: a decoded recursive
// transducer over a dense 3-value graph can blow up combinatorially,
// and the property under test is equivalence, not size.
const fuzzBudget = 20_000

type fuzzDecoder struct {
	data []byte
	pos  int
}

func (d *fuzzDecoder) byte() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func fuzzSchema() *relation.Schema {
	return relation.NewSchema().MustDeclare("A", 1).MustDeclare("E", 2)
}

// instance decodes a few A(1) and E(2) facts over the domain {0,1,2}.
// One decode path starts from a completely empty instance (empty active
// domain) — deltas then grow it, so repair crosses the empty↔nonempty
// boundary in both directions.
func (d *fuzzDecoder) instance(s *relation.Schema) *relation.Instance {
	inst := relation.NewInstance(s)
	if d.byte()%5 == 0 {
		return inst
	}
	for k := int(d.byte()) % 4; k > 0; k-- {
		inst.Add("A", string(value.Of(int(d.byte())%3)))
	}
	for k := int(d.byte()) % 6; k > 0; k-- {
		inst.Add("E", string(value.Of(int(d.byte())%3)), string(value.Of(int(d.byte())%3)))
	}
	inst.Add("A", "0") // keep the active domain nonempty
	return inst
}

// queryPool is the rule-item template space: every query groups by one
// variable, so the decoded transducer is tuple-register of arity 1.
// Templates 2-4 read the register, making repair's dependency tracking
// and subtree reuse both reachable.
func queryPool() []*logic.Query {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	u, w := logic.Var("u"), logic.Var("w")
	return []*logic.Query{
		// all A-elements
		logic.MustQuery([]logic.Var{x}, nil, logic.R("A", x)),
		// E-successors of the register vertex
		logic.MustQuery([]logic.Var{x}, nil,
			logic.Ex([]logic.Var{y}, logic.Conj(logic.R(pt.RegRel, y), logic.R("E", y, x)))),
		// E-predecessors of the register vertex
		logic.MustQuery([]logic.Var{x}, nil,
			logic.Ex([]logic.Var{y}, logic.Conj(logic.R(pt.RegRel, y), logic.R("E", x, y)))),
		// the register itself, if A holds of it
		logic.MustQuery([]logic.Var{x}, nil,
			logic.Conj(logic.R(pt.RegRel, x), logic.R("A", x))),
		// edge sources
		logic.MustQuery([]logic.Var{x}, nil,
			logic.Ex([]logic.Var{y}, logic.R("E", x, y))),
		// vertices reachable from the register via E's transitive
		// closure: a recursive fixpoint on the repair path.
		logic.MustQuery([]logic.Var{x}, nil,
			logic.Ex([]logic.Var{y}, logic.Conj(
				logic.R(pt.RegRel, y),
				&logic.Fixpoint{
					Rel:  "S",
					Vars: []logic.Var{u, w},
					Body: &logic.Or{
						L: logic.R("E", u, w),
						R: logic.Ex([]logic.Var{z},
							logic.Conj(logic.R("S", u, z), logic.R("E", z, w))),
					},
					Args: []logic.Term{y, x},
				}))),
		// A-elements guarded by a vacuous ∀ with a shadowed rebind: true
		// over a nonempty domain, vacuously true over an empty one —
		// pins the ∀/∃ empty-domain semantics on the repair path.
		logic.MustQuery([]logic.Var{x}, nil,
			logic.Conj(logic.R("A", x),
				logic.All([]logic.Var{y}, logic.Ex([]logic.Var{y}, logic.R("A", y))))),
	}
}

// transducer decodes a small recursive transducer: 2-3 states over tags
// a/b, each rule carrying 1-2 items with pool queries and decoded
// targets. The ancestor stop condition bounds recursion (configs are
// (state, tag, one-of-3-values), so paths are short even when cyclic).
func (d *fuzzDecoder) transducer(s *relation.Schema) *pt.Transducer {
	pool := queryPool()
	states := []string{"q1", "q2", "q3"}[:2+int(d.byte())%2]
	tags := []string{"a", "b"}
	tr := pt.New("fuzz", s, "q0", "r")
	for _, tag := range tags {
		tr.DeclareTag(tag, 1)
	}
	item := func() pt.RHS {
		return pt.Item(states[int(d.byte())%len(states)],
			tags[int(d.byte())%len(tags)],
			pool[int(d.byte())%len(pool)])
	}
	// Root rule: distinct tags per item (a rule may not repeat a tag),
	// and only templates that do not read Reg — the root register is
	// 0-ary, so Reg-reading queries fail at birth.
	rootPool := []*logic.Query{pool[0], pool[4], pool[6]}
	rootItems := []pt.RHS{pt.Item(states[int(d.byte())%len(states)], "a", rootPool[int(d.byte())%len(rootPool)])}
	if d.byte()%2 == 0 {
		rootItems = append(rootItems, pt.Item(states[int(d.byte())%len(states)], "b", rootPool[int(d.byte())%len(rootPool)]))
	}
	tr.AddRule("q0", "r", rootItems...)
	for _, st := range states {
		for _, tag := range tags {
			if d.byte()%4 == 0 {
				continue // some (state, tag) configs are leaves
			}
			items := []pt.RHS{item()}
			if second := item(); second.Tag != items[0].Tag {
				items = append(items, second)
			}
			tr.AddRule(st, tag, items...)
		}
	}
	return tr
}

// deltas decodes 1-4 delta steps of 1-3 ops each over the same bounded
// domain, plus a fresh value "3" so inserts can genuinely grow the tree.
func (d *fuzzDecoder) deltas() []*relation.Delta {
	val := func() string {
		return string(value.Of(int(d.byte()) % 4))
	}
	steps := make([]*relation.Delta, 1+int(d.byte())%4)
	for i := range steps {
		dl := &relation.Delta{}
		for o, ops := 0, 1+int(d.byte())%3; o < ops; o++ {
			ins := d.byte()%2 == 0
			if d.byte()%2 == 0 {
				if ins {
					dl.Insert("A", val())
				} else {
					dl.Delete("A", val())
				}
			} else {
				if ins {
					dl.Insert("E", val(), val())
				} else {
					dl.Delete("E", val(), val())
				}
			}
		}
		steps[i] = dl
	}
	return steps
}

func FuzzIncrementalEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 4, 0, 1, 1, 2, 2, 0, 1, 0, 2, 3, 1, 0, 0, 1, 2, 1, 0, 0, 1, 1, 0})
	f.Add([]byte("incremental repair differential seed: deltas on E"))
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	// Seeds biased toward the empty-instance decode path (first byte ≡ 0
	// mod 5) and the fixpoint / vacuous-∀ pool templates (indices 5, 6).
	f.Add([]byte{0, 1, 0, 5, 1, 1, 6, 0, 2, 1, 0, 3, 1, 1, 0, 0, 1, 2})
	f.Add([]byte{5, 2, 1, 0, 2, 1, 2, 0, 1, 5, 1, 6, 0, 2, 2, 1, 0, 0, 3, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &fuzzDecoder{data: data}
		s := fuzzSchema()
		oracle := d.instance(s)
		tr := d.transducer(s)
		steps := d.deltas()
		// Alternate the fallback policy so surgical repair and rebuild
		// are both exercised by the corpus.
		opts := incr.Options{Run: pt.Options{MaxNodes: fuzzBudget}}
		if d.byte()%2 == 0 {
			opts.RebuildThreshold = -1
		}
		// Cross-evaluator oracle: alternate which side runs on compiled
		// plans and which on the interpreter, so plan ≡ interpreter is
		// asserted through the whole repair pipeline (not just EvalQuery).
		opts.Run.NoPlan = d.byte()%2 == 0
		oracleOpts := pt.Options{MaxNodes: fuzzBudget, Cache: pt.CacheQueries, NoPlan: !opts.Run.NoPlan}
		v, err := incr.NewView(context.Background(), tr, oracle.Clone(), opts)
		if err != nil {
			t.Skip() // decoded workload outgrew the budget at birth
		}
		for i, dl := range steps {
			_, applyErr := v.Apply(context.Background(), dl)
			if _, err := oracle.Apply(dl); err != nil {
				t.Fatalf("step %d: oracle apply: %v", i, err)
			}
			ores, oerr := tr.Run(oracle, oracleOpts)
			if applyErr != nil {
				if oerr == nil {
					t.Fatalf("step %d: view failed (%v) but oracle ran fine on %s", i, applyErr, dl)
				}
				if _, _, serr := v.Snapshot(true); serr == nil {
					t.Fatalf("step %d: broken view served a snapshot", i)
				}
				return // both sides outgrew the budget
			}
			if oerr != nil {
				return
			}
			var sb strings.Builder
			if err := ores.Xi.WriteCanonicalVirtual(&sb, tr.Virtual); err != nil {
				t.Fatalf("step %d: serialize: %v", i, err)
			}
			got, _, err := v.Snapshot(true)
			if err != nil {
				t.Fatalf("step %d: snapshot: %v", i, err)
			}
			if string(got) != sb.String() {
				t.Fatalf("step %d (%s): view != rebuild\nview:    %s\nrebuild: %s\ninstance %s",
					i, dl, got, sb.String(), oracle)
			}
		}
	})
}
