//go:build !race

package incr_test

// raceEnabled mirrors the -race build tag so the differential suite can
// scale its seed count down: the detector multiplies the runtime
// roughly tenfold without adding coverage beyond what a smaller batch
// already exercises.
const raceEnabled = false
