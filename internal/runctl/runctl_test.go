package runctl

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilControllerIsUnlimited(t *testing.T) {
	var c *Controller
	if err := c.Canceled(); err != nil {
		t.Fatalf("nil Canceled: %v", err)
	}
	if err := c.Tick(); err != nil {
		t.Fatalf("nil Tick: %v", err)
	}
	if err := c.AddNodes(1 << 30); err != nil {
		t.Fatalf("nil AddNodes: %v", err)
	}
	if err := c.Depth(1 << 30); err != nil {
		t.Fatalf("nil Depth: %v", err)
	}
	if err := c.Query(); err != nil {
		t.Fatalf("nil Query: %v", err)
	}
	if err := c.FixpointIter(1 << 30); err != nil {
		t.Fatalf("nil FixpointIter: %v", err)
	}
}

func TestNodeBudget(t *testing.T) {
	c := New(context.Background(), Limits{MaxNodes: 10})
	if err := c.AddNodes(7); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := c.AddNodes(7)
	var be *ErrBudget
	if !errors.As(err, &be) {
		t.Fatalf("expected *ErrBudget, got %T: %v", err, err)
	}
	if be.Kind != BudgetNodes || be.Limit != 10 {
		t.Fatalf("wrong budget report: %+v", be)
	}
}

func TestDepthBudget(t *testing.T) {
	c := New(context.Background(), Limits{MaxDepth: 3})
	if err := c.Depth(3); err != nil {
		t.Fatalf("depth 3 within budget: %v", err)
	}
	err := c.Depth(4)
	var be *ErrBudget
	if !errors.As(err, &be) || be.Kind != BudgetDepth {
		t.Fatalf("expected depth budget error, got %v", err)
	}
}

func TestQueryBudgetAndCancellation(t *testing.T) {
	c := New(context.Background(), Limits{MaxQueries: 2})
	if err := c.Query(); err != nil {
		t.Fatal(err)
	}
	if err := c.Query(); err != nil {
		t.Fatal(err)
	}
	var be *ErrBudget
	if err := c.Query(); !errors.As(err, &be) || be.Kind != BudgetQueries {
		t.Fatalf("expected query budget error, got %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c2 := New(ctx, Limits{})
	err := c2.Query()
	var ce *ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("expected *ErrCanceled, got %T: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCanceled should unwrap to context.Canceled: %v", err)
	}
}

func TestDeadlineUnwrapsToDeadlineExceeded(t *testing.T) {
	l := Limits{Timeout: time.Millisecond}
	ctx, cancel := l.WithTimeout(context.Background())
	defer cancel()
	<-ctx.Done()
	err := New(ctx, l).Canceled()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded in chain, got %v", err)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	boom := errors.New("boom")
	p := &FaultPlan{Op: OpQuery, N: 3, Err: boom}
	c := New(context.Background(), Limits{}).WithFaults(p)
	for i := 1; i <= 5; i++ {
		err := c.Query()
		if i == 3 && !errors.Is(err, boom) {
			t.Fatalf("op %d: expected injected fault, got %v", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("op %d: unexpected error %v", i, err)
		}
	}
	if got := p.Observed(); got != 5 {
		t.Fatalf("Observed() = %d, want 5", got)
	}
	// Node ops are not counted against a query plan.
	if err := c.AddNodes(1); err != nil {
		t.Fatalf("AddNodes hit a query fault plan: %v", err)
	}
	if got := p.Observed(); got != 5 {
		t.Fatalf("Observed() after node op = %d, want 5", got)
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover(&err, "runctl.test")
		panic("kaboom")
	}
	err := f()
	var ie *ErrInternal
	if !errors.As(err, &ie) {
		t.Fatalf("expected *ErrInternal, got %T: %v", err, err)
	}
	if ie.Op != "runctl.test" || ie.Panic != "kaboom" || len(ie.Stack) == 0 {
		t.Fatalf("incomplete internal error: %+v", ie)
	}
}

func TestTickEventuallySeesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(ctx, Limits{})
	var err error
	for i := 0; i < 1024 && err == nil; i++ {
		err = c.Tick()
	}
	var ce *ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("Tick never observed cancellation: %v", err)
	}
}

func TestBoundsTree(t *testing.T) {
	cases := []struct {
		l    Limits
		want bool
	}{
		{Limits{}, false},
		{Limits{Timeout: time.Second, MaxQueries: 5, MaxFixpointIters: 3}, false},
		{Limits{MaxNodes: 1}, true},
		{Limits{MaxDepth: 1}, true},
		{Limits{MaxNodes: 10, MaxDepth: 10}, true},
	}
	for _, c := range cases {
		if got := c.l.BoundsTree(); got != c.want {
			t.Errorf("BoundsTree(%+v) = %v, want %v", c.l, got, c.want)
		}
	}
}
