package runctl

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilControllerIsUnlimited(t *testing.T) {
	var c *Controller
	if err := c.Canceled(); err != nil {
		t.Fatalf("nil Canceled: %v", err)
	}
	if err := c.Tick(); err != nil {
		t.Fatalf("nil Tick: %v", err)
	}
	if err := c.AddNodes(1 << 30); err != nil {
		t.Fatalf("nil AddNodes: %v", err)
	}
	if err := c.Depth(1 << 30); err != nil {
		t.Fatalf("nil Depth: %v", err)
	}
	if err := c.Query(); err != nil {
		t.Fatalf("nil Query: %v", err)
	}
	if err := c.FixpointIter(1 << 30); err != nil {
		t.Fatalf("nil FixpointIter: %v", err)
	}
}

func TestNodeBudget(t *testing.T) {
	c := New(context.Background(), Limits{MaxNodes: 10})
	if err := c.AddNodes(7); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := c.AddNodes(7)
	var be *ErrBudget
	if !errors.As(err, &be) {
		t.Fatalf("expected *ErrBudget, got %T: %v", err, err)
	}
	if be.Kind != BudgetNodes || be.Limit != 10 {
		t.Fatalf("wrong budget report: %+v", be)
	}
}

func TestDepthBudget(t *testing.T) {
	c := New(context.Background(), Limits{MaxDepth: 3})
	if err := c.Depth(3); err != nil {
		t.Fatalf("depth 3 within budget: %v", err)
	}
	err := c.Depth(4)
	var be *ErrBudget
	if !errors.As(err, &be) || be.Kind != BudgetDepth {
		t.Fatalf("expected depth budget error, got %v", err)
	}
}

func TestQueryBudgetAndCancellation(t *testing.T) {
	c := New(context.Background(), Limits{MaxQueries: 2})
	if err := c.Query(); err != nil {
		t.Fatal(err)
	}
	if err := c.Query(); err != nil {
		t.Fatal(err)
	}
	var be *ErrBudget
	if err := c.Query(); !errors.As(err, &be) || be.Kind != BudgetQueries {
		t.Fatalf("expected query budget error, got %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c2 := New(ctx, Limits{})
	err := c2.Query()
	var ce *ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("expected *ErrCanceled, got %T: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCanceled should unwrap to context.Canceled: %v", err)
	}
}

func TestDeadlineUnwrapsToDeadlineExceeded(t *testing.T) {
	l := Limits{Timeout: time.Millisecond}
	ctx, cancel := l.WithTimeout(context.Background())
	defer cancel()
	<-ctx.Done()
	err := New(ctx, l).Canceled()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded in chain, got %v", err)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	boom := errors.New("boom")
	p := &FaultPlan{Op: OpQuery, N: 3, Err: boom}
	c := New(context.Background(), Limits{}).WithFaults(p)
	for i := 1; i <= 5; i++ {
		err := c.Query()
		if i == 3 && !errors.Is(err, boom) {
			t.Fatalf("op %d: expected injected fault, got %v", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("op %d: unexpected error %v", i, err)
		}
	}
	if got := p.Observed(); got != 5 {
		t.Fatalf("Observed() = %d, want 5", got)
	}
	// Node ops are not counted against a query plan.
	if err := c.AddNodes(1); err != nil {
		t.Fatalf("AddNodes hit a query fault plan: %v", err)
	}
	if got := p.Observed(); got != 5 {
		t.Fatalf("Observed() after node op = %d, want 5", got)
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover(&err, "runctl.test")
		panic("kaboom")
	}
	err := f()
	var ie *ErrInternal
	if !errors.As(err, &ie) {
		t.Fatalf("expected *ErrInternal, got %T: %v", err, err)
	}
	if ie.Op != "runctl.test" || ie.Panic != "kaboom" || len(ie.Stack) == 0 {
		t.Fatalf("incomplete internal error: %+v", ie)
	}
}

func TestTickEventuallySeesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(ctx, Limits{})
	var err error
	for i := 0; i < 1024 && err == nil; i++ {
		err = c.Tick()
	}
	var ce *ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("Tick never observed cancellation: %v", err)
	}
}

func TestBoundsTree(t *testing.T) {
	cases := []struct {
		l    Limits
		want bool
	}{
		{Limits{}, false},
		{Limits{Timeout: time.Second, MaxQueries: 5, MaxFixpointIters: 3}, false},
		{Limits{MaxNodes: 1}, true},
		{Limits{MaxDepth: 1}, true},
		{Limits{MaxNodes: 10, MaxDepth: 10}, true},
	}
	for _, c := range cases {
		if got := c.l.BoundsTree(); got != c.want {
			t.Errorf("BoundsTree(%+v) = %v, want %v", c.l, got, c.want)
		}
	}
}

func TestTransientMarking(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) should be nil")
	}
	cause := errors.New("socket reset")
	err := Transient(cause)
	if !IsTransient(err) {
		t.Fatal("Transient-wrapped error not classified transient")
	}
	if !errors.Is(err, cause) {
		t.Fatal("Transient must unwrap to its cause")
	}
	if IsTransient(cause) {
		t.Fatal("plain error misclassified as transient")
	}
	if IsTransient(Transient(Transient(cause))) != true {
		t.Fatal("double wrapping should stay transient")
	}
}

// TestSeededPlanDeterministic pins the probabilistic mode: the same
// (seed, probs) produce the same fault schedule over the same op
// sequence, and a different seed produces a different one — the
// property chaos cases replay from.
func TestSeededPlanDeterministic(t *testing.T) {
	boom := errors.New("boom")
	schedule := func(seed int64) []int {
		p := SeededPlan(seed, boom, map[Op]float64{OpQuery: 0.2})
		var hits []int
		for i := 0; i < 200; i++ {
			if p.Check(OpQuery) != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := schedule(42), schedule(42)
	if len(a) == 0 {
		t.Fatal("0.2 over 200 draws produced no faults; PRNG not wired")
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
	if c := schedule(43); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

// TestObservedOpCounts: the plan counts every op it sees per kind,
// across both modes, while Observed() tracks only the Nth-op kind.
func TestObservedOpCounts(t *testing.T) {
	p := &FaultPlan{Op: OpQuery, N: 100, Err: errors.New("x"),
		Probs: map[Op]float64{OpSerialize: 0}, Seed: 1}
	for i := 0; i < 3; i++ {
		p.Check(OpQuery)
	}
	for i := 0; i < 5; i++ {
		p.Check(OpNode)
	}
	p.Check(OpSerialize)
	if got := p.ObservedOp(OpQuery); got != 3 {
		t.Errorf("ObservedOp(query) = %d, want 3", got)
	}
	if got := p.ObservedOp(OpNode); got != 5 {
		t.Errorf("ObservedOp(node) = %d, want 5", got)
	}
	if got := p.ObservedOp(OpSerialize); got != 1 {
		t.Errorf("ObservedOp(serialize) = %d, want 1", got)
	}
	if got := p.ObservedOp(OpEval); got != 0 {
		t.Errorf("ObservedOp(eval) = %d, want 0", got)
	}
	if got := p.Observed(); got != 3 {
		t.Errorf("Observed() = %d, want 3 (query-kind only)", got)
	}
	var nilPlan *FaultPlan
	if nilPlan.Observed() != 0 || nilPlan.ObservedOp(OpQuery) != 0 || nilPlan.Check(OpQuery) != nil {
		t.Error("nil plan must observe nothing and inject nothing")
	}
}

// TestOpsComplete: Ops() is the registry CLIs validate -inject against;
// adding an Op without listing it there silently breaks the flag.
func TestOpsComplete(t *testing.T) {
	want := map[Op]bool{
		OpQuery: true, OpNode: true, OpEval: true, OpSerialize: true,
		OpWALAppend: true, OpWALSync: true, OpMutateAck: true,
		OpNetRequest: true,
	}
	got := Ops()
	if len(got) != len(want) {
		t.Fatalf("Ops() = %v, want the %d known kinds", got, len(want))
	}
	for _, op := range got {
		if !want[op] {
			t.Errorf("Ops() lists unknown kind %q", op)
		}
	}
}
