// Package runctl is the run-control layer shared by the long-running
// parts of the system: the transducer runner (internal/pt), the formula
// evaluator (internal/eval) and the decision procedures
// (internal/decide).
//
// The paper guarantees that every transformation terminates
// (Proposition 1(1)), but termination is a weak promise in practice:
// relation-store transducers legitimately produce doubly-exponential
// trees (Proposition 1(4)), and the static analyses range from NP-hard
// to non-elementary, so any of these calls can run effectively forever
// on hostile input. runctl turns "effectively forever" into a typed,
// inspectable error:
//
//   - Limits bounds a run by wall clock, generated nodes, tree depth,
//     evaluated queries and fixpoint iterations;
//   - Controller binds a context.Context to a Limits value and hands
//     out cheap, concurrency-safe checkpoints;
//   - ErrCanceled / ErrBudget / ErrInternal are errors.Is/As-friendly
//     error types that callers can dispatch on;
//   - Recover converts internal panics at an API boundary into
//     *ErrInternal instead of killing the process;
//   - FaultPlan is a test-only deterministic fault injector ("fail the
//     Nth query") used to prove that errors propagate cleanly through
//     concurrent expansion.
//
// All Controller methods are safe on a nil receiver, which means
// call sites can thread a controller unconditionally and pay nothing
// when no limits are configured.
package runctl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// BudgetKind names the resource whose budget was exhausted.
type BudgetKind string

const (
	BudgetNodes      BudgetKind = "nodes"
	BudgetDepth      BudgetKind = "tree-depth"
	BudgetQueries    BudgetKind = "queries"
	BudgetFixpoint   BudgetKind = "fixpoint-iterations"
	BudgetCandidates BudgetKind = "candidates"
)

// Limits bounds a run. The zero value imposes no limits.
type Limits struct {
	// Timeout is the wall-clock budget for the whole run; applied as a
	// context deadline by WithTimeout. 0 means none.
	Timeout time.Duration
	// MaxNodes caps the number of generated tree nodes.
	MaxNodes int
	// MaxDepth caps the depth of the generated tree (the root is at
	// depth 1).
	MaxDepth int
	// MaxQueries caps the number of rule-query evaluations.
	MaxQueries int
	// MaxFixpointIters caps the iterations of any single inflationary
	// fixpoint loop.
	MaxFixpointIters int
}

// BoundsTree reports whether the limit set constrains the SHAPE of the
// generated tree (node or depth budgets) rather than just the work done
// producing it. Optimizations that change how much of the tree is
// physically expanded — pt's subtree sharing reuses whole expanded
// subtrees without re-charging them node by node — must degrade to a
// work-level cache under tree-shaped budgets so that budget semantics
// stay identical across cache modes.
func (l Limits) BoundsTree() bool {
	return l.MaxNodes > 0 || l.MaxDepth > 0
}

// WithTimeout derives a context carrying the wall-clock budget. The
// returned cancel func must always be called.
func (l Limits) WithTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if l.Timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, l.Timeout)
}

// ErrCanceled reports that a run stopped because its context was
// canceled or its deadline expired. It unwraps to the context error, so
// errors.Is(err, context.DeadlineExceeded) works.
type ErrCanceled struct{ Cause error }

func (e *ErrCanceled) Error() string {
	return fmt.Sprintf("runctl: run canceled: %v", e.Cause)
}

func (e *ErrCanceled) Unwrap() error { return e.Cause }

// ErrBudget reports that a resource budget was exhausted. The result of
// the interrupted computation is unknown ("undecided"), not negative.
// Observed is the count actually reached when the budget tripped — at
// least Limit+1 for counted budgets — so callers can tell a budget that
// was barely exceeded from one that was swamped (concurrent workers may
// overshoot before the first error propagates).
type ErrBudget struct {
	Kind     BudgetKind
	Limit    int
	Observed int
}

func (e *ErrBudget) Error() string {
	return fmt.Sprintf("runctl: %s budget exhausted (observed %d, limit %d)", e.Kind, e.Observed, e.Limit)
}

// ErrInternal wraps a panic recovered at a public API boundary, with
// the operation that was running and the stack at the panic site.
type ErrInternal struct {
	Op    string
	Panic any
	Stack []byte
}

func (e *ErrInternal) Error() string {
	return fmt.Sprintf("runctl: internal error in %s: %v", e.Op, e.Panic)
}

// InternalFrom builds an *ErrInternal for a recovered panic value,
// capturing the current stack.
func InternalFrom(op string, p any) *ErrInternal {
	return &ErrInternal{Op: op, Panic: p, Stack: debug.Stack()}
}

// Recover is deferred at public API boundaries: it converts a panic in
// the enclosed call into an *ErrInternal assigned to *errp.
//
//	func Public() (err error) {
//	    defer runctl.Recover(&err, "pkg.Public")
//	    ...
//	}
func Recover(errp *error, op string) {
	if p := recover(); p != nil {
		*errp = InternalFrom(op, p)
	}
}

// ErrTransient marks an error as transient: the operation that failed
// may succeed if simply retried (possibly under degraded options). The
// supervision layer retries transient errors and treats everything
// unmarked — spec bugs, validation failures — as permanent. Fault
// injectors wrap their errors with Transient so chaos runs exercise the
// retry path.
type ErrTransient struct{ Cause error }

func (e *ErrTransient) Error() string {
	return fmt.Sprintf("runctl: transient: %v", e.Cause)
}

func (e *ErrTransient) Unwrap() error { return e.Cause }

// Transient wraps err as retryable; Transient(nil) is nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &ErrTransient{Cause: err}
}

// IsTransient reports whether err carries a transient marker anywhere in
// its chain.
func IsTransient(err error) bool {
	var te *ErrTransient
	return errors.As(err, &te)
}

// Op identifies an operation class for fault injection.
type Op string

const (
	// OpQuery is one rule-query evaluation.
	OpQuery Op = "query"
	// OpNode is one batch of node materializations.
	OpNode Op = "node"
	// OpEval is one formula evaluation inside internal/eval (finer than
	// OpQuery: memo hits skip it, and the decision procedures hit it
	// without going through the transducer runner).
	OpEval Op = "eval"
	// OpSerialize is one write of the streaming XML serializers; injected
	// by wrapping the output io.Writer (see supervise/chaos), not by the
	// controller.
	OpSerialize Op = "serialize"
	// OpWALAppend is one durable-log record write, checked BEFORE any
	// bytes reach the segment: an injected fault is a pre-fsync crash
	// and the record is atomically absent.
	OpWALAppend Op = "wal-append"
	// OpWALSync is the fsync sealing one durable-log record, checked
	// after the bytes are written but before they are durable: the log
	// rolls the write back, exactly what power loss between write and
	// sync leaves after torn-tail recovery.
	OpWALSync Op = "wal-sync"
	// OpMutateAck is the acknowledgment of one accepted mutation,
	// checked after the delta is durable but before the client sees the
	// 200: a post-fsync/pre-ack crash — the client must treat the
	// outcome as unknown and retry (deltas are idempotent).
	OpMutateAck Op = "mutate-ack"
	// OpNetRequest is one inter-node HTTP request leaving a process,
	// checked by the netchaos mesh before the dial: an injected fault is
	// an immediate connection refusal, composing the Nth-op and seeded
	// modes with the mesh's own link faults.
	OpNetRequest Op = "net-request"
)

// Ops lists every operation kind, for iteration in tests and harnesses.
func Ops() []Op {
	return []Op{OpQuery, OpNode, OpEval, OpSerialize, OpWALAppend, OpWALSync, OpMutateAck, OpNetRequest}
}

// FaultPlan injects deterministic test-only failures. It has two
// composable modes:
//
//   - Nth-op: Op/N/Err fail exactly the Nth operation of one kind (the
//     historical behavior, byte-compatible with existing tests);
//   - probabilistic: Probs[op] gives a per-operation failure
//     probability, driven by a PRNG seeded with Seed, so a whole family
//     of "randomized" fault schedules is reproducible from one integer.
//
// Independent of injection, the plan counts every operation it observes
// per kind (ObservedOp), which measures how much work ran before — and
// concurrently with — a fault. The zero value (and nil) injects nothing.
type FaultPlan struct {
	Op  Op
	N   int64 // 1-based index of the operation to fail; 0 disables
	Err error // the error to inject

	// Probs maps operation kinds to failure probabilities in [0,1];
	// draws come from a PRNG seeded with Seed. Concurrent runs may
	// interleave draws differently, so which op fails can vary, but a
	// serial run is fully reproducible from (Seed, Probs).
	Probs map[Op]float64
	Seed  int64

	count atomic.Int64

	mu       sync.Mutex
	rng      *rand.Rand
	observed map[Op]int64
}

// SeededPlan builds a probabilistic plan failing each op of a listed
// kind with its given probability, injecting err (callers usually pass a
// Transient-wrapped error so supervision retries it).
func SeededPlan(seed int64, err error, probs map[Op]float64) *FaultPlan {
	return &FaultPlan{Seed: seed, Err: err, Probs: probs}
}

// Check counts the operation and returns the injected error when either
// mode fires: the Nth occurrence of the planned kind, or a seeded coin
// flip under Probs. It is exported so layers the controller cannot see
// (e.g. serializer wrappers) can participate in the same plan.
func (p *FaultPlan) Check(op Op) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.observed == nil {
		p.observed = make(map[Op]int64, 4)
	}
	p.observed[op]++
	var hit bool
	if prob := p.Probs[op]; prob > 0 {
		if p.rng == nil {
			p.rng = rand.New(rand.NewSource(p.Seed))
		}
		hit = p.rng.Float64() < prob
	}
	p.mu.Unlock()
	if hit {
		return p.Err
	}
	if p.N > 0 && p.Op == op && p.count.Add(1) == p.N {
		return p.Err
	}
	return nil
}

// check is the internal spelling used by the controller.
func (p *FaultPlan) check(op Op) error { return p.Check(op) }

// Observed reports how many operations of the Nth-op planned kind have
// been counted so far — a direct measure of how much work ran before
// (and concurrently with) the injected fault. For per-kind counts
// across both modes use ObservedOp.
func (p *FaultPlan) Observed() int64 {
	if p == nil {
		return 0
	}
	return p.count.Load()
}

// ObservedOp reports how many operations of the given kind the plan has
// seen, regardless of mode.
func (p *FaultPlan) ObservedOp(op Op) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.observed[op]
}

// planKey carries a *FaultPlan through a context (see WithPlan).
type planKey struct{}

// WithPlan attaches a fault-injection plan to the context so that
// layers which build their own controllers deep inside an API — the
// decision procedures construct runctl.New(ctx, …) internally — still
// participate in the caller's fault schedule. New picks the plan up
// automatically; an explicitly attached plan (Controller.WithFaults)
// takes precedence. WithPlan(ctx, nil) returns ctx unchanged.
func WithPlan(ctx context.Context, p *FaultPlan) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, planKey{}, p)
}

// PlanFromContext returns the fault plan attached by WithPlan, or nil.
func PlanFromContext(ctx context.Context) *FaultPlan {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(planKey{}).(*FaultPlan)
	return p
}

// ParseInject parses the CLI spelling of an Nth-op fault plan,
// "op:N:kind" — fail the Nth operation of the given kind with a
// transient, permanent or internal error. It is the shared
// implementation behind the -inject test-aid flag of ptxml, ptstatic
// and pttables. The empty string yields a nil plan.
func ParseInject(s string) (*FaultPlan, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -inject %q: want op:N:kind", s)
	}
	op := Op(parts[0])
	valid := false
	for _, known := range Ops() {
		if op == known {
			valid = true
		}
	}
	if !valid {
		return nil, fmt.Errorf("bad -inject op %q", parts[0])
	}
	n, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("bad -inject count %q", parts[1])
	}
	var injected error
	switch parts[2] {
	case "transient":
		injected = Transient(errors.New("injected fault"))
	case "permanent":
		injected = errors.New("injected fault")
	case "internal":
		injected = &ErrInternal{Op: "inject", Panic: "injected fault"}
	default:
		return nil, fmt.Errorf("bad -inject kind %q: want transient, permanent or internal", parts[2])
	}
	return &FaultPlan{Op: op, N: n, Err: injected}, nil
}

// Controller binds a context to a set of limits and shares counters
// across the goroutines of one run. A nil *Controller is valid and
// imposes no limits.
type Controller struct {
	ctx    context.Context
	limits Limits
	faults *FaultPlan

	nodes   atomic.Int64
	queries atomic.Int64
	ticks   atomic.Uint64
}

// New builds a controller for one run. ctx carries cancellation and the
// wall-clock deadline (see Limits.WithTimeout); a fault plan attached
// with WithPlan is adopted automatically (overridable via WithFaults).
func New(ctx context.Context, limits Limits) *Controller {
	return &Controller{ctx: ctx, limits: limits, faults: PlanFromContext(ctx)}
}

// WithFaults attaches a fault-injection plan and returns the receiver.
// A nil plan is a no-op, so an explicit per-call plan always wins over a
// context-carried one but never erases it.
func (c *Controller) WithFaults(p *FaultPlan) *Controller {
	if c != nil && p != nil {
		c.faults = p
	}
	return c
}

// Canceled returns a typed *ErrCanceled when the run's context is done.
func (c *Controller) Canceled() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return &ErrCanceled{Cause: err}
	}
	return nil
}

// Tick is a cheap cancellation probe for tight inner loops: it checks
// the context only every few hundred calls.
func (c *Controller) Tick() error {
	if c == nil {
		return nil
	}
	if c.ticks.Add(1)&0xFF != 0 {
		return nil
	}
	return c.Canceled()
}

// AddNodes charges n generated nodes against the node budget.
func (c *Controller) AddNodes(n int) error {
	if c == nil {
		return nil
	}
	if err := c.faults.check(OpNode); err != nil {
		return err
	}
	if got := c.nodes.Add(int64(n)); c.limits.MaxNodes > 0 && got > int64(c.limits.MaxNodes) {
		return &ErrBudget{Kind: BudgetNodes, Limit: c.limits.MaxNodes, Observed: int(got)}
	}
	return nil
}

// Depth checks the tree-depth budget for a node at the given depth
// (root = 1).
func (c *Controller) Depth(d int) error {
	if c == nil {
		return nil
	}
	if c.limits.MaxDepth > 0 && d > c.limits.MaxDepth {
		return &ErrBudget{Kind: BudgetDepth, Limit: c.limits.MaxDepth, Observed: d}
	}
	return nil
}

// Query charges one rule-query evaluation: it checks cancellation, the
// fault plan and the query budget.
func (c *Controller) Query() error {
	if c == nil {
		return nil
	}
	if err := c.Canceled(); err != nil {
		return err
	}
	if err := c.faults.check(OpQuery); err != nil {
		return err
	}
	if got := c.queries.Add(1); c.limits.MaxQueries > 0 && got > int64(c.limits.MaxQueries) {
		return &ErrBudget{Kind: BudgetQueries, Limit: c.limits.MaxQueries, Observed: int(got)}
	}
	return nil
}

// Fault checks only the fault-injection plan for one operation of the
// given kind; layers that have their own budget accounting (or none)
// use it to participate in a run's fault schedule.
func (c *Controller) Fault(op Op) error {
	if c == nil {
		return nil
	}
	return c.faults.check(op)
}

// FixpointIter checks cancellation and the iteration budget at the top
// of the iter-th pass (1-based) of an inflationary fixpoint loop.
func (c *Controller) FixpointIter(iter int) error {
	if c == nil {
		return nil
	}
	if err := c.Canceled(); err != nil {
		return err
	}
	if c.limits.MaxFixpointIters > 0 && iter > c.limits.MaxFixpointIters {
		return &ErrBudget{Kind: BudgetFixpoint, Limit: c.limits.MaxFixpointIters, Observed: iter}
	}
	return nil
}
