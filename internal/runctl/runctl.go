// Package runctl is the run-control layer shared by the long-running
// parts of the system: the transducer runner (internal/pt), the formula
// evaluator (internal/eval) and the decision procedures
// (internal/decide).
//
// The paper guarantees that every transformation terminates
// (Proposition 1(1)), but termination is a weak promise in practice:
// relation-store transducers legitimately produce doubly-exponential
// trees (Proposition 1(4)), and the static analyses range from NP-hard
// to non-elementary, so any of these calls can run effectively forever
// on hostile input. runctl turns "effectively forever" into a typed,
// inspectable error:
//
//   - Limits bounds a run by wall clock, generated nodes, tree depth,
//     evaluated queries and fixpoint iterations;
//   - Controller binds a context.Context to a Limits value and hands
//     out cheap, concurrency-safe checkpoints;
//   - ErrCanceled / ErrBudget / ErrInternal are errors.Is/As-friendly
//     error types that callers can dispatch on;
//   - Recover converts internal panics at an API boundary into
//     *ErrInternal instead of killing the process;
//   - FaultPlan is a test-only deterministic fault injector ("fail the
//     Nth query") used to prove that errors propagate cleanly through
//     concurrent expansion.
//
// All Controller methods are safe on a nil receiver, which means
// call sites can thread a controller unconditionally and pay nothing
// when no limits are configured.
package runctl

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// BudgetKind names the resource whose budget was exhausted.
type BudgetKind string

const (
	BudgetNodes      BudgetKind = "nodes"
	BudgetDepth      BudgetKind = "tree-depth"
	BudgetQueries    BudgetKind = "queries"
	BudgetFixpoint   BudgetKind = "fixpoint-iterations"
	BudgetCandidates BudgetKind = "candidates"
)

// Limits bounds a run. The zero value imposes no limits.
type Limits struct {
	// Timeout is the wall-clock budget for the whole run; applied as a
	// context deadline by WithTimeout. 0 means none.
	Timeout time.Duration
	// MaxNodes caps the number of generated tree nodes.
	MaxNodes int
	// MaxDepth caps the depth of the generated tree (the root is at
	// depth 1).
	MaxDepth int
	// MaxQueries caps the number of rule-query evaluations.
	MaxQueries int
	// MaxFixpointIters caps the iterations of any single inflationary
	// fixpoint loop.
	MaxFixpointIters int
}

// BoundsTree reports whether the limit set constrains the SHAPE of the
// generated tree (node or depth budgets) rather than just the work done
// producing it. Optimizations that change how much of the tree is
// physically expanded — pt's subtree sharing reuses whole expanded
// subtrees without re-charging them node by node — must degrade to a
// work-level cache under tree-shaped budgets so that budget semantics
// stay identical across cache modes.
func (l Limits) BoundsTree() bool {
	return l.MaxNodes > 0 || l.MaxDepth > 0
}

// WithTimeout derives a context carrying the wall-clock budget. The
// returned cancel func must always be called.
func (l Limits) WithTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if l.Timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, l.Timeout)
}

// ErrCanceled reports that a run stopped because its context was
// canceled or its deadline expired. It unwraps to the context error, so
// errors.Is(err, context.DeadlineExceeded) works.
type ErrCanceled struct{ Cause error }

func (e *ErrCanceled) Error() string {
	return fmt.Sprintf("runctl: run canceled: %v", e.Cause)
}

func (e *ErrCanceled) Unwrap() error { return e.Cause }

// ErrBudget reports that a resource budget was exhausted. The result of
// the interrupted computation is unknown ("undecided"), not negative.
type ErrBudget struct {
	Kind  BudgetKind
	Limit int
}

func (e *ErrBudget) Error() string {
	return fmt.Sprintf("runctl: %s budget exhausted (limit %d)", e.Kind, e.Limit)
}

// ErrInternal wraps a panic recovered at a public API boundary, with
// the operation that was running and the stack at the panic site.
type ErrInternal struct {
	Op    string
	Panic any
	Stack []byte
}

func (e *ErrInternal) Error() string {
	return fmt.Sprintf("runctl: internal error in %s: %v", e.Op, e.Panic)
}

// InternalFrom builds an *ErrInternal for a recovered panic value,
// capturing the current stack.
func InternalFrom(op string, p any) *ErrInternal {
	return &ErrInternal{Op: op, Panic: p, Stack: debug.Stack()}
}

// Recover is deferred at public API boundaries: it converts a panic in
// the enclosed call into an *ErrInternal assigned to *errp.
//
//	func Public() (err error) {
//	    defer runctl.Recover(&err, "pkg.Public")
//	    ...
//	}
func Recover(errp *error, op string) {
	if p := recover(); p != nil {
		*errp = InternalFrom(op, p)
	}
}

// Op identifies an operation class for fault injection.
type Op string

const (
	// OpQuery is one rule-query evaluation.
	OpQuery Op = "query"
	// OpNode is one batch of node materializations.
	OpNode Op = "node"
)

// FaultPlan deterministically fails the Nth operation of a kind; it is
// test-only plumbing for proving error propagation through concurrent
// expansion. The zero value (and nil) injects nothing.
type FaultPlan struct {
	Op  Op
	N   int64 // 1-based index of the operation to fail; 0 disables
	Err error // the error to inject

	count atomic.Int64
}

// check counts an operation and returns the injected error exactly on
// the Nth occurrence of the planned kind.
func (p *FaultPlan) check(op Op) error {
	if p == nil || p.N <= 0 || p.Op != op {
		return nil
	}
	if p.count.Add(1) == p.N {
		return p.Err
	}
	return nil
}

// Observed reports how many operations of the planned kind have been
// counted so far — a direct measure of how much work ran before (and
// concurrently with) the injected fault.
func (p *FaultPlan) Observed() int64 {
	if p == nil {
		return 0
	}
	return p.count.Load()
}

// Controller binds a context to a set of limits and shares counters
// across the goroutines of one run. A nil *Controller is valid and
// imposes no limits.
type Controller struct {
	ctx    context.Context
	limits Limits
	faults *FaultPlan

	nodes   atomic.Int64
	queries atomic.Int64
	ticks   atomic.Uint64
}

// New builds a controller for one run. ctx carries cancellation and the
// wall-clock deadline (see Limits.WithTimeout).
func New(ctx context.Context, limits Limits) *Controller {
	return &Controller{ctx: ctx, limits: limits}
}

// WithFaults attaches a fault-injection plan and returns the receiver.
func (c *Controller) WithFaults(p *FaultPlan) *Controller {
	if c != nil {
		c.faults = p
	}
	return c
}

// Canceled returns a typed *ErrCanceled when the run's context is done.
func (c *Controller) Canceled() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return &ErrCanceled{Cause: err}
	}
	return nil
}

// Tick is a cheap cancellation probe for tight inner loops: it checks
// the context only every few hundred calls.
func (c *Controller) Tick() error {
	if c == nil {
		return nil
	}
	if c.ticks.Add(1)&0xFF != 0 {
		return nil
	}
	return c.Canceled()
}

// AddNodes charges n generated nodes against the node budget.
func (c *Controller) AddNodes(n int) error {
	if c == nil {
		return nil
	}
	if err := c.faults.check(OpNode); err != nil {
		return err
	}
	if c.limits.MaxNodes > 0 && c.nodes.Add(int64(n)) > int64(c.limits.MaxNodes) {
		return &ErrBudget{Kind: BudgetNodes, Limit: c.limits.MaxNodes}
	}
	return nil
}

// Depth checks the tree-depth budget for a node at the given depth
// (root = 1).
func (c *Controller) Depth(d int) error {
	if c == nil {
		return nil
	}
	if c.limits.MaxDepth > 0 && d > c.limits.MaxDepth {
		return &ErrBudget{Kind: BudgetDepth, Limit: c.limits.MaxDepth}
	}
	return nil
}

// Query charges one rule-query evaluation: it checks cancellation, the
// fault plan and the query budget.
func (c *Controller) Query() error {
	if c == nil {
		return nil
	}
	if err := c.Canceled(); err != nil {
		return err
	}
	if err := c.faults.check(OpQuery); err != nil {
		return err
	}
	if c.limits.MaxQueries > 0 && c.queries.Add(1) > int64(c.limits.MaxQueries) {
		return &ErrBudget{Kind: BudgetQueries, Limit: c.limits.MaxQueries}
	}
	return nil
}

// FixpointIter checks cancellation and the iteration budget at the top
// of the iter-th pass (1-based) of an inflationary fixpoint loop.
func (c *Controller) FixpointIter(iter int) error {
	if c == nil {
		return nil
	}
	if err := c.Canceled(); err != nil {
		return err
	}
	if c.limits.MaxFixpointIters > 0 && iter > c.limits.MaxFixpointIters {
		return &ErrBudget{Kind: BudgetFixpoint, Limit: c.limits.MaxFixpointIters}
	}
	return nil
}
