package runctl

import (
	"context"
	"errors"
	"testing"
)

// TestParseInject pins the shared -inject grammar: op:N:kind with the
// three error kinds, rejecting malformed spellings.
func TestParseInject(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		p, err := ParseInject("")
		if p != nil || err != nil {
			t.Fatalf("ParseInject(\"\") = %v, %v; want nil, nil", p, err)
		}
	})

	t.Run("transient", func(t *testing.T) {
		p, err := ParseInject("query:3:transient")
		if err != nil {
			t.Fatal(err)
		}
		if p.Op != OpQuery || p.N != 3 {
			t.Fatalf("plan = %+v", p)
		}
		if !IsTransient(p.Err) {
			t.Fatalf("transient kind should mark the error: %v", p.Err)
		}
	})

	t.Run("internal", func(t *testing.T) {
		p, err := ParseInject("node:1:internal")
		if err != nil {
			t.Fatal(err)
		}
		var ie *ErrInternal
		if !errors.As(p.Err, &ie) {
			t.Fatalf("internal kind should inject *ErrInternal: %v", p.Err)
		}
	})

	t.Run("permanent", func(t *testing.T) {
		p, err := ParseInject("eval:2:permanent")
		if err != nil {
			t.Fatal(err)
		}
		if IsTransient(p.Err) {
			t.Fatalf("permanent kind must not be transient: %v", p.Err)
		}
	})

	for _, bad := range []string{
		"query",                // no parts
		"query:1",              // missing kind
		"frob:1:transient",     // unknown op
		"query:0:transient",    // zero count
		"query:-2:transient",   // negative count
		"query:x:transient",    // non-numeric count
		"query:1:catastrophic", // unknown kind
		"a:b:c:d",              // too many parts
	} {
		if _, err := ParseInject(bad); err == nil {
			t.Errorf("ParseInject(%q) accepted", bad)
		}
	}
}

// TestContextPlan verifies that a WithPlan-carried plan reaches a
// controller built from the context and fires through its checks.
func TestContextPlan(t *testing.T) {
	injected := Transient(errors.New("ctx fault"))
	plan := &FaultPlan{Op: OpQuery, N: 2, Err: injected}
	ctx := WithPlan(context.Background(), plan)

	if got := PlanFromContext(ctx); got != plan {
		t.Fatalf("PlanFromContext = %v, want the attached plan", got)
	}
	if got := PlanFromContext(context.Background()); got != nil {
		t.Fatalf("bare context should carry no plan, got %v", got)
	}
	if got := WithPlan(ctx, nil); got != ctx {
		t.Fatal("WithPlan(ctx, nil) should return ctx unchanged")
	}

	ctl := New(ctx, Limits{})
	if err := ctl.Query(); err != nil {
		t.Fatalf("query 1: %v", err)
	}
	if err := ctl.Query(); !errors.Is(err, injected) {
		t.Fatalf("query 2: got %v, want the injected fault", err)
	}
}

// TestWithFaultsPrecedence: an explicit plan overrides the
// context-carried one, and WithFaults(nil) preserves it.
func TestWithFaultsPrecedence(t *testing.T) {
	ctxErr := errors.New("from context")
	optErr := errors.New("from options")
	ctxPlan := &FaultPlan{Op: OpNode, N: 1, Err: ctxErr}
	optPlan := &FaultPlan{Op: OpNode, N: 1, Err: optErr}
	ctx := WithPlan(context.Background(), ctxPlan)

	if err := New(ctx, Limits{}).WithFaults(nil).AddNodes(1); !errors.Is(err, ctxErr) {
		t.Fatalf("WithFaults(nil) dropped the context plan: %v", err)
	}
	if err := New(ctx, Limits{}).WithFaults(optPlan).AddNodes(1); !errors.Is(err, optErr) {
		t.Fatalf("explicit plan should win: %v", err)
	}
}
