// Package plan compiles transducer queries (logic.Query) to executable
// plans. The interpreter in internal/eval walks the formula AST afresh
// on every evaluation, recomputing variable positions, join layouts and
// negation rewrites per node visit; a publishing transducer evaluates
// the same handful of rule queries at thousands to millions of nodes,
// so this package does that analysis once:
//
//   - the formula is rewritten to negation normal form and lowered to
//     an operator tree (scan, conj, union, project, complement,
//     forall, fixpoint) with every variable layout — scan output
//     order, duplicate-variable checks, union alignments, head
//     projections — resolved at compile time;
//   - conjunctions evaluate their positive conjuncts and then hash-join
//     them greedily by actual cardinality (smallest first, preferring
//     joinable pairs over cross products), applying (in)equality and
//     negation conjuncts as filters on the bound prefix the moment
//     their variables are covered instead of materializing |adom|²
//     binding sets;
//   - fixpoint bodies are compiled once and re-executed per iteration
//     against the growing stage relation;
//   - the executor interns data values to dense ids per evaluation, so
//     join keys and deduplication sets hash 4-byte packed ids instead
//     of length-prefixed strings, and scans with constant arguments go
//     through the relation layer's secondary column indexes.
//
// Plans are differentially equal to eval.EvalQueryNaive — the fuzz
// corpora (eval.FuzzDifferentialEval, incr.FuzzIncrementalEval) pin
// the equivalence — and are wired in behind eval.EvalQuery, with
// Env.WithoutPlanner as the escape hatch.
package plan

import (
	"fmt"
	"strings"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/value"
)

// Env is the evaluation environment a plan executes against. eval.Env
// satisfies it.
type Env interface {
	// Lookup resolves a relation name (extra relations shadow the
	// instance).
	Lookup(name string) (*relation.Relation, bool)
	// Domain returns the active domain extended with the given
	// constants, sorted.
	Domain(extraConsts []value.V) []value.V
	// Control returns the run controller (possibly nil).
	Control() *runctl.Controller
}

// Plan is a compiled query. A Plan is immutable after Compile and safe
// for concurrent Eval calls; each Eval owns its transient state.
type Plan struct {
	head    []logic.Var
	consts  []value.V
	root    node
	missing []logic.Var // head variables the root does not produce
	proj    []int       // head-order columns into root.vars ++ missing
}

// node is one operator of the compiled tree. vars() is the fixed
// output variable order, resolved at compile time.
type node interface {
	vars() []logic.Var
	exec(x *exec) (*bset, error)
	explain(sb *strings.Builder, depth int)
}

// Compile lowers q to an executable plan. The query's formula is
// rewritten to NNF first, so negation reaches the operator tree only
// as anti-join filters or complements over single atoms/fixpoints.
func Compile(q *logic.Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	root, err := compileNode(logic.NNF(q.F))
	if err != nil {
		return nil, err
	}
	head := q.Head()
	rv := root.vars()
	missing := varsMissing(head, rv)
	all := make([]logic.Var, 0, len(rv)+len(missing))
	all = append(all, rv...)
	all = append(all, missing...)
	proj, err := projection(all, head)
	if err != nil {
		return nil, err
	}
	return &Plan{head: head, consts: logic.Constants(q.F), root: root, missing: missing, proj: proj}, nil
}

// Eval executes the plan against env and returns the result relation
// over the query head, identical to eval.EvalQueryNaive's.
func (p *Plan) Eval(env Env) (*relation.Relation, error) {
	ctl := env.Control()
	// Tick sampling means short evaluations may never probe the
	// context; check once up front so a canceled run aborts promptly.
	if err := ctl.Canceled(); err != nil {
		return nil, err
	}
	x := &exec{
		env:     env,
		ctl:     ctl,
		adom:    env.Domain(p.consts),
		overlay: make(map[string]*relation.Relation),
		in:      value.NewInterner(),
	}
	b, err := p.root.exec(x)
	if err != nil {
		return nil, err
	}
	b, err = x.expand(b, p.missing)
	if err != nil {
		return nil, err
	}
	out := relation.New(len(p.head))
	row := make(value.Tuple, len(p.head))
	for _, t := range b.rows {
		for i, c := range p.proj {
			row[i] = t[c]
		}
		out.Add(row)
	}
	return out, nil
}

// Explain renders the operator tree for diagnostics and golden tests.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan head=%s\n", varList(p.head))
	p.root.explain(&sb, 1)
	if len(p.missing) > 0 {
		indent(&sb, 1)
		fmt.Fprintf(&sb, "expand %s over adom\n", varList(p.missing))
	}
	return sb.String()
}

// compileNode lowers an NNF formula to an operator.
func compileNode(f logic.Formula) (node, error) {
	switch g := f.(type) {
	case *logic.Truth:
		if g.B {
			return &nUnit{}, nil
		}
		return &nEmpty{}, nil
	case *logic.Atom:
		return compileScan(g)
	case *logic.Eq, *logic.Neq:
		// A standalone (in)equality is a conjunction of one filter: the
		// conj operator's bind/expand machinery materializes it over
		// the active domain only as far as necessary.
		return compileConj([]logic.Formula{f})
	case *logic.And:
		var cs []logic.Formula
		logic.FlattenConj(g, &cs)
		return compileConj(cs)
	case *logic.Or:
		l, err := compileNode(g.L)
		if err != nil {
			return nil, err
		}
		r, err := compileNode(g.R)
		if err != nil {
			return nil, err
		}
		return newUnion(l, r)
	case *logic.Not:
		// In NNF, ¬ survives only over atoms and fixpoints, so the
		// complement's arity is the atom's variable count, never an
		// accumulated conjunction width.
		child, err := compileNode(g.F)
		if err != nil {
			return nil, err
		}
		return &nComplement{child: child}, nil
	case *logic.Exists:
		child, err := compileNode(g.F)
		if err != nil {
			return nil, err
		}
		return newProject(child, g.Bound)
	case *logic.Forall:
		// ∀x̄ φ ≡ ¬∃x̄ ¬φ with the inner negation pushed to NNF, so only
		// the final (low-arity) complement touches the active domain.
		// Bound variables ¬φ does not mention must still range over the
		// domain before being projected away — with an empty active
		// domain ∀x ψ is vacuously true even when ψ is false, which a
		// bare column-drop ∃ gets wrong.
		inner, err := compileNode(logic.Negate(g.F))
		if err != nil {
			return nil, err
		}
		boundMiss := varsMissing(g.Bound, inner.vars())
		all1 := make([]logic.Var, 0, len(inner.vars())+len(boundMiss))
		all1 = append(all1, inner.vars()...)
		all1 = append(all1, boundMiss...)
		bound := make(map[logic.Var]bool, len(g.Bound))
		for _, v := range g.Bound {
			bound[v] = true
		}
		var exProj []int
		var exVars []logic.Var
		for i, v := range all1 {
			if !bound[v] {
				exProj = append(exProj, i)
				exVars = append(exVars, v)
			}
		}
		out := logic.FreeVars(g)
		miss := varsMissing(out, exVars)
		all2 := make([]logic.Var, 0, len(exVars)+len(miss))
		all2 = append(all2, exVars...)
		all2 = append(all2, miss...)
		proj, err := projection(all2, out)
		if err != nil {
			return nil, err
		}
		return &nForall{
			out: out, inner: inner,
			boundMiss: boundMiss, exProj: exProj, exVars: exVars,
			miss: miss, proj: proj,
		}, nil
	case *logic.Fixpoint:
		return compileFixpoint(g)
	}
	return nil, fmt.Errorf("plan: unknown formula %T", f)
}

// compileConj splits a flattened conjunction into positive operators
// and filters ((in)equalities and negations, applied on bound
// prefixes at execution time).
func compileConj(cs []logic.Formula) (node, error) {
	n := &nConj{}
	seen := make(map[logic.Var]bool)
	addOut := func(vs []logic.Var) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				n.out = append(n.out, v)
			}
		}
	}
	for _, c := range cs {
		switch g := c.(type) {
		case *logic.Eq:
			n.filters = append(n.filters, &filter{kind: fEq, l: g.L, r: g.R, frees: logic.FreeVars(g)})
		case *logic.Neq:
			n.filters = append(n.filters, &filter{kind: fNeq, l: g.L, r: g.R, frees: logic.FreeVars(g)})
		case *logic.Not:
			sub, err := compileNode(g.F)
			if err != nil {
				return nil, err
			}
			n.filters = append(n.filters, &filter{kind: fNot, sub: sub, frees: logic.FreeVars(g)})
		default:
			p, err := compileNode(c)
			if err != nil {
				return nil, err
			}
			n.positives = append(n.positives, p)
			addOut(p.vars())
		}
	}
	for _, f := range n.filters {
		addOut(f.frees)
	}
	return n, nil
}

// compileScan resolves an atom's variable layout: distinct variables
// in first-occurrence order, the positions that must agree for
// repeated variables, constant checks, and the column driving an
// index lookup.
func compileScan(a *logic.Atom) (*nScan, error) {
	s := &nScan{rel: a.Rel, atom: a, constCol: -1}
	first := make(map[logic.Var]int) // var → position of first occurrence
	for i, t := range a.Args {
		switch u := t.(type) {
		case logic.Var:
			if p, ok := first[u]; ok {
				s.dups = append(s.dups, [2]int{i, p})
			} else {
				first[u] = i
				s.out = append(s.out, u)
				s.varFirst = append(s.varFirst, i)
			}
		case logic.Const:
			s.consts = append(s.consts, constCheck{pos: i, v: value.V(u)})
			if s.constCol < 0 {
				s.constCol = i
				s.constVal = value.V(u)
			}
		default:
			return nil, fmt.Errorf("plan: unknown term %T in atom %s", t, a)
		}
	}
	return s, nil
}

func compileFixpoint(fp *logic.Fixpoint) (node, error) {
	k := len(fp.Vars)
	if len(fp.Args) != k {
		return nil, fmt.Errorf("eval: fixpoint %s applied to %d terms, expects %d", fp.Rel, len(fp.Args), k)
	}
	body, err := compileNode(logic.NNF(fp.Body))
	if err != nil {
		return nil, err
	}
	miss := varsMissing(fp.Vars, body.vars())
	all := make([]logic.Var, 0, len(body.vars())+len(miss))
	all = append(all, body.vars()...)
	all = append(all, miss...)
	proj := make([]int, k)
	idx := varIndex(all)
	for i, v := range fp.Vars {
		ci, ok := idx[v]
		if !ok {
			return nil, fmt.Errorf("eval: fixpoint variable %s lost during evaluation", v)
		}
		proj[i] = ci
	}
	apply, err := compileScan(&logic.Atom{Rel: fp.Rel, Args: fp.Args})
	if err != nil {
		return nil, err
	}
	return &nFixpoint{rel: fp.Rel, fvars: fp.Vars, body: body, bodyMiss: miss, bodyProj: proj, apply: apply}, nil
}

func newUnion(l, r node) (node, error) {
	out := append([]logic.Var{}, l.vars()...)
	out = append(out, varsMissing(r.vars(), l.vars())...)
	n := &nUnion{out: out, l: l, r: r}
	var err error
	if n.lMiss, n.lProj, err = alignTo(l.vars(), out); err != nil {
		return nil, err
	}
	if n.rMiss, n.rProj, err = alignTo(r.vars(), out); err != nil {
		return nil, err
	}
	return n, nil
}

func newProject(child node, drop []logic.Var) (node, error) {
	dropSet := make(map[logic.Var]bool, len(drop))
	for _, v := range drop {
		dropSet[v] = true
	}
	var out []logic.Var
	var cols []int
	for i, v := range child.vars() {
		if !dropSet[v] {
			out = append(out, v)
			cols = append(cols, i)
		}
	}
	vacuous := len(varsMissing(drop, child.vars())) > 0
	return &nProject{out: out, child: child, cols: cols, vacuous: vacuous}, nil
}

// alignTo computes the expansion+projection that takes bindings over
// have to bindings over want: the want-variables missing from have
// (appended by expansion, in want order) and the projection columns
// from have·missing to want order.
func alignTo(have, want []logic.Var) (miss []logic.Var, proj []int, err error) {
	miss = varsMissing(want, have)
	all := make([]logic.Var, 0, len(have)+len(miss))
	all = append(all, have...)
	all = append(all, miss...)
	proj, err = projection(all, want)
	return miss, proj, err
}

// varsMissing returns the elements of want absent from have, in want
// order, without duplicates.
func varsMissing(want, have []logic.Var) []logic.Var {
	set := make(map[logic.Var]bool, len(have))
	for _, v := range have {
		set[v] = true
	}
	var out []logic.Var
	for _, v := range want {
		if !set[v] {
			set[v] = true
			out = append(out, v)
		}
	}
	return out
}

// projection maps want to column positions in have.
func projection(have, want []logic.Var) ([]int, error) {
	idx := varIndex(have)
	cols := make([]int, len(want))
	for i, v := range want {
		ci, ok := idx[v]
		if !ok {
			return nil, fmt.Errorf("plan: variable %s not available in %v", v, have)
		}
		cols[i] = ci
	}
	return cols, nil
}

func varIndex(vs []logic.Var) map[logic.Var]int {
	idx := make(map[logic.Var]int, len(vs))
	for i, v := range vs {
		idx[v] = i
	}
	return idx
}

func varList(vs []logic.Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}
