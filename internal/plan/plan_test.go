package plan_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"ptx/internal/eval"
	"ptx/internal/logic"
	"ptx/internal/plan"
	"ptx/internal/relation"
	"ptx/internal/runctl"
)

func x() logic.Var                   { return logic.Var("x") }
func y() logic.Var                   { return logic.Var("y") }
func z() logic.Var                   { return logic.Var("z") }
func vs(names ...string) []logic.Var { return logic.Vars(names...) }

func graphInstance() *relation.Instance {
	s := relation.NewSchema().MustDeclare("A", 1).MustDeclare("E", 2)
	inst := relation.NewInstance(s)
	inst.Add("A", "a")
	inst.Add("A", "b")
	inst.Add("E", "a", "b")
	inst.Add("E", "b", "c")
	inst.Add("E", "c", "a")
	inst.Add("E", "a", "a")
	inst.Add("E", "c", "d")
	return inst
}

func emptyInstance() *relation.Instance {
	s := relation.NewSchema().MustDeclare("A", 1).MustDeclare("E", 2)
	return relation.NewInstance(s)
}

// diff evaluates q through the compiled plan and through the naive
// interpreter and requires identical results (or both failing).
func diff(t *testing.T, q *logic.Query, env *eval.Env) {
	t.Helper()
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatalf("compile %s: %v", q, err)
	}
	got, gerr := p.Eval(env)
	want, werr := eval.EvalQueryNaive(q, env)
	if (gerr != nil) != (werr != nil) {
		t.Fatalf("%s: plan err %v, naive err %v", q, gerr, werr)
	}
	if gerr != nil {
		return
	}
	if !got.Equal(want) {
		t.Fatalf("%s:\nplan  %s\nnaive %s\n%s", q, got, want, p.Explain())
	}
}

func tcFix(rel string, u, v logic.Var, args ...logic.Term) *logic.Fixpoint {
	w := logic.Var("w")
	return &logic.Fixpoint{
		Rel:  rel,
		Vars: []logic.Var{u, v},
		Body: &logic.Or{
			L: logic.R("E", u, v),
			R: &logic.Exists{Bound: []logic.Var{w}, F: logic.Conj(logic.R(rel, u, w), logic.R("E", w, v))},
		},
		Args: args,
	}
}

func TestPlanDifferential(t *testing.T) {
	cases := []struct {
		name string
		q    *logic.Query
	}{
		{"atom", logic.MustQuery(vs("x"), vs("y"), logic.R("E", x(), y()))},
		{"dup-var", logic.MustQuery(vs("x"), nil, logic.R("E", x(), x()))},
		{"const-scan", logic.MustQuery(vs("x"), nil, logic.R("E", logic.Const("a"), x()))},
		{"const-only", logic.MustQuery(nil, nil, logic.R("E", logic.Const("a"), logic.Const("b")))},
		{"path-join", logic.MustQuery(vs("x"), vs("y", "z"),
			logic.Conj(logic.R("E", x(), y()), logic.R("E", y(), z())))},
		{"triangle-neq", logic.MustQuery(vs("x"), vs("y", "z"),
			logic.Conj(logic.R("E", x(), y()), logic.R("E", y(), z()), logic.R("E", z(), x()),
				logic.NeqT(x(), z())))},
		{"cross-product", logic.MustQuery(vs("x"), vs("y"),
			logic.Conj(logic.R("A", x()), logic.R("A", y())))},
		{"eq-binds-const", logic.MustQuery(vs("x"), vs("y"),
			logic.Conj(logic.R("A", x()), logic.EqT(y(), logic.Const("b"))))},
		{"eq-binds-var", logic.MustQuery(vs("x"), vs("y"),
			logic.Conj(logic.R("A", x()), logic.EqT(x(), y())))},
		{"eq-both-unbound", logic.MustQuery(vs("x"), vs("y", "z"),
			logic.Conj(logic.R("A", x()), logic.EqT(y(), z())))},
		{"eq-self", logic.MustQuery(vs("x"), nil, logic.EqT(x(), x()))},
		{"neq-self", logic.MustQuery(vs("x"), nil, logic.NeqT(x(), x()))},
		{"neq-unbound", logic.MustQuery(vs("x"), vs("y"),
			logic.Conj(logic.R("A", x()), logic.NeqT(y(), logic.Const("a"))))},
		{"neq-both-unbound", logic.MustQuery(vs("x"), vs("y"),
			logic.NeqT(x(), y()))},
		{"standalone-eq", logic.MustQuery(vs("x"), nil, logic.EqT(x(), logic.Const("c")))},
		{"or", logic.MustQuery(vs("x"), vs("y"),
			&logic.Or{L: logic.R("E", x(), y()), R: logic.R("A", x())})},
		{"not-atom", logic.MustQuery(vs("x"), nil,
			logic.Conj(logic.R("A", x()), &logic.Not{F: logic.R("E", x(), x())}))},
		{"not-conj", logic.MustQuery(vs("x"), vs("y"),
			&logic.Not{F: logic.Conj(logic.R("E", x(), y()), logic.R("A", x()))})},
		{"not-unbound", logic.MustQuery(vs("x"), vs("y"),
			logic.Conj(logic.R("A", x()), &logic.Not{F: logic.R("E", y(), y())}))},
		{"exists", logic.MustQuery(vs("x"), nil,
			&logic.Exists{Bound: vs("y"), F: logic.R("E", x(), y())})},
		{"forall", logic.MustQuery(vs("x"), nil,
			logic.Conj(logic.R("A", x()),
				&logic.Forall{Bound: vs("y"), F: &logic.Or{L: &logic.Not{F: logic.R("E", x(), y())}, R: logic.R("A", y())}}))},
		{"sentence-not", logic.MustQuery(vs("x"), nil,
			logic.Conj(logic.R("A", x()), &logic.Not{F: &logic.Exists{Bound: vs("y"), F: logic.R("E", y(), y())}}))},
		{"truth", logic.MustQuery(vs("x"), nil, logic.Conj(logic.R("A", x()), logic.True))},
		{"falsity", logic.MustQuery(nil, nil, logic.False)},
		{"free-head", logic.MustQuery(vs("x"), vs("y"), logic.R("A", x()))},
		{"fixpoint-tc", logic.MustQuery(vs("x"), vs("y"), tcFix("S", x(), y(), x(), y()))},
		{"fixpoint-const", logic.MustQuery(vs("y"), nil, tcFix("S", x(), y(), logic.Const("a"), y()))},
		{"fixpoint-neg", logic.MustQuery(vs("x"), vs("y"),
			logic.Conj(logic.R("A", x()), &logic.Not{F: tcFix("S", x(), y(), x(), y())}))},
	}
	envs := map[string]*eval.Env{
		"graph": eval.NewEnv(graphInstance()),
		"empty": eval.NewEnv(emptyInstance()),
	}
	for _, tc := range cases {
		for ename, env := range envs {
			t.Run(tc.name+"/"+ename, func(t *testing.T) { diff(t, tc.q, env) })
		}
	}
}

func TestPlanExtraRelationShadowing(t *testing.T) {
	inst := graphInstance()
	reg := relation.FromRows([]string{"a", "z"})
	env := eval.NewEnv(inst).WithRelation("Reg", reg)
	q := logic.MustQuery(vs("x"), vs("y"),
		logic.Conj(logic.R("Reg", x(), y()), logic.R("E", x(), x())))
	diff(t, q, env)
	// The extra relation's values must enter the active domain ("z").
	q2 := logic.MustQuery(vs("x"), vs("y"),
		logic.Conj(logic.R("A", x()), logic.NeqT(y(), logic.Const("q"))))
	diff(t, q2, env.WithRelation("Reg", reg))
}

func TestPlanErrors(t *testing.T) {
	env := eval.NewEnv(graphInstance())
	for name, q := range map[string]*logic.Query{
		"unknown-relation": logic.MustQuery(vs("x"), nil, logic.R("U", x())),
		"arity-mismatch":   logic.MustQuery(vs("x"), nil, logic.R("E", x())),
	} {
		t.Run(name, func(t *testing.T) {
			p, err := plan.Compile(q)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if _, err := p.Eval(env); err == nil {
				t.Fatal("expected evaluation error")
			}
			diff(t, q, env) // and the failure mode matches the interpreter
		})
	}
}

func TestPlanFixpointBudget(t *testing.T) {
	ctl := runctl.New(context.Background(), runctl.Limits{MaxFixpointIters: 1})
	env := eval.NewEnv(graphInstance()).WithControl(ctl)
	q := logic.MustQuery(vs("x"), vs("y"), tcFix("S", x(), y(), x(), y()))
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Eval(env); err == nil {
		t.Fatal("fixpoint budget of 1 iteration should fail on transitive closure")
	}
}

func TestPlanCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := eval.NewEnv(graphInstance()).WithControl(runctl.New(ctx, runctl.Limits{}))
	q := logic.MustQuery(vs("x"), vs("y", "z"),
		logic.Conj(logic.R("E", x(), y()), logic.R("E", y(), z())))
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Eval(env); err == nil {
		t.Fatal("canceled context should abort evaluation")
	}
}

// TestPlanConcurrentEval: one compiled plan is safe for concurrent use.
func TestPlanConcurrentEval(t *testing.T) {
	env := eval.NewEnv(graphInstance())
	q := logic.MustQuery(vs("x"), vs("y"), tcFix("S", x(), y(), x(), y()))
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := p.Eval(env)
			if err != nil {
				errs[i] = err
				return
			}
			if !got.Equal(want) {
				errs[i] = errMismatch
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent eval produced a different result" }

func TestPlanExplain(t *testing.T) {
	q := logic.MustQuery(vs("x"), vs("y", "z"),
		logic.Conj(logic.R("E", x(), y()), logic.R("E", y(), z()), logic.NeqT(x(), z())))
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	for _, want := range []string{"plan head=(x,y,z)", "conj", "scan E(x,y)", "x!=z"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	// A constant argument routes the scan through a column index.
	q2 := logic.MustQuery(vs("x"), nil, logic.R("E", logic.Const("a"), x()))
	p2, err := plan.Compile(q2)
	if err != nil {
		t.Fatal(err)
	}
	if out := p2.Explain(); !strings.Contains(out, "[index col 0]") {
		t.Fatalf("constant scan not index-backed:\n%s", out)
	}
}
