package plan

import (
	"fmt"
	"strings"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/value"
)

// exec is the transient state of one plan evaluation: the environment,
// the active domain, the overlay of fixpoint stage relations shadowing
// the environment, and a per-evaluation value interner so join keys and
// dedup sets hash dense 4-byte ids instead of length-prefixed strings.
type exec struct {
	env     Env
	ctl     *runctl.Controller
	adom    []value.V
	overlay map[string]*relation.Relation
	in      *value.Interner
	kbuf    []byte
}

func (x *exec) lookup(name string) (*relation.Relation, bool) {
	if r, ok := x.overlay[name]; ok {
		return r, true
	}
	return x.env.Lookup(name)
}

// key packs a tuple into interned ids; equal tuples of equal arity get
// equal keys within one execution.
func (x *exec) key(t value.Tuple) string {
	x.kbuf = x.in.AppendTupleID(x.kbuf[:0], t)
	return string(x.kbuf)
}

// bset is a deduplicated set of assignments over a fixed variable order.
// Rows are owned by the set once added and never mutated afterwards, so
// derived sets may share them.
type bset struct {
	vars []logic.Var
	rows []value.Tuple
	keys map[string]struct{}
}

func newBset(vars []logic.Var) *bset {
	return &bset{vars: vars, keys: make(map[string]struct{})}
}

func (b *bset) add(x *exec, t value.Tuple) {
	k := x.key(t)
	if _, ok := b.keys[k]; ok {
		return
	}
	b.keys[k] = struct{}{}
	b.rows = append(b.rows, t)
}

func unitBset(x *exec) *bset {
	b := newBset(nil)
	b.add(x, value.Tuple{})
	return b
}

// join hash-joins two binding sets on their shared variables; output
// variables are l's followed by r's new ones.
func (x *exec) join(l, r *bset) (*bset, error) {
	lIdx := varIndex(l.vars)
	var sharedL, sharedR, rOnlyCols []int
	var rOnly []logic.Var
	for i, v := range r.vars {
		if li, ok := lIdx[v]; ok {
			sharedL = append(sharedL, li)
			sharedR = append(sharedR, i)
		} else {
			rOnly = append(rOnly, v)
			rOnlyCols = append(rOnlyCols, i)
		}
	}
	outVars := make([]logic.Var, 0, len(l.vars)+len(rOnly))
	outVars = append(outVars, l.vars...)
	outVars = append(outVars, rOnly...)
	out := newBset(outVars)

	build := make(map[string][]value.Tuple, len(r.rows))
	var kb []byte
	for _, rt := range r.rows {
		kb = kb[:0]
		for _, c := range sharedR {
			kb = x.in.AppendID(kb, rt[c])
		}
		build[string(kb)] = append(build[string(kb)], rt)
	}
	for _, lt := range l.rows {
		if err := x.ctl.Tick(); err != nil {
			return nil, err
		}
		kb = kb[:0]
		for _, c := range sharedL {
			kb = x.in.AppendID(kb, lt[c])
		}
		for _, rt := range build[string(kb)] {
			row := make(value.Tuple, 0, len(outVars))
			row = append(row, lt...)
			for _, c := range rOnlyCols {
				row = append(row, rt[c])
			}
			out.add(x, row)
		}
	}
	return out, nil
}

// expand extends every row with all assignments of the missing
// variables over the active domain (adom^|missing| per row).
func (x *exec) expand(b *bset, missing []logic.Var) (*bset, error) {
	if len(missing) == 0 {
		return b, nil
	}
	outVars := make([]logic.Var, 0, len(b.vars)+len(missing))
	outVars = append(outVars, b.vars...)
	outVars = append(outVars, missing...)
	out := newBset(outVars)
	row := make(value.Tuple, len(outVars))
	base := len(b.vars)
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(missing) {
			if err := x.ctl.Tick(); err != nil {
				return err
			}
			out.add(x, row.Clone())
			return nil
		}
		for _, d := range x.adom {
			row[base+i] = d
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, t := range b.rows {
		copy(row, t)
		if err := rec(0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// complement returns adom^k minus b, over the same variables.
func (x *exec) complement(b *bset) (*bset, error) {
	out := newBset(b.vars)
	k := len(b.vars)
	cand := make(value.Tuple, k)
	var rec func(i int) error
	rec = func(i int) error {
		if i == k {
			if err := x.ctl.Tick(); err != nil {
				return err
			}
			if _, hit := b.keys[x.key(cand)]; !hit {
				out.add(x, cand.Clone())
			}
			return nil
		}
		for _, d := range x.adom {
			cand[i] = d
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// project restricts/reorders b to out via the given columns.
func (x *exec) project(b *bset, cols []int, out []logic.Var) *bset {
	nb := newBset(out)
	for _, t := range b.rows {
		row := make(value.Tuple, len(cols))
		for i, c := range cols {
			row[i] = t[c]
		}
		nb.add(x, row)
	}
	return nb
}

// ---------------------------------------------------------------- nUnit

// nUnit is ⊤: the single empty assignment.
type nUnit struct{}

func (*nUnit) vars() []logic.Var { return nil }

func (*nUnit) exec(x *exec) (*bset, error) { return unitBset(x), nil }

func (*nUnit) explain(sb *strings.Builder, d int) {
	indent(sb, d)
	sb.WriteString("unit\n")
}

// nEmpty is ⊥: no assignments.
type nEmpty struct{}

func (*nEmpty) vars() []logic.Var { return nil }

func (*nEmpty) exec(x *exec) (*bset, error) { return newBset(nil), nil }

func (*nEmpty) explain(sb *strings.Builder, d int) {
	indent(sb, d)
	sb.WriteString("empty\n")
}

// ---------------------------------------------------------------- nScan

type constCheck struct {
	pos int
	v   value.V
}

// nScan reads one relation atom. Variable layout (first occurrences,
// duplicate positions, constant checks) is resolved at compile time;
// when the atom carries a constant, the scan goes through the
// relation's secondary column index instead of the full extent.
type nScan struct {
	rel      string
	atom     *logic.Atom
	out      []logic.Var // distinct variables, first-occurrence order
	varFirst []int       // out[i]'s column in the relation
	dups     [][2]int    // (pos, firstPos) pairs that must agree
	consts   []constCheck
	constCol int // column driving the index lookup, -1 if none
	constVal value.V
}

func (n *nScan) vars() []logic.Var { return n.out }

func (n *nScan) exec(x *exec) (*bset, error) {
	rel, ok := x.lookup(n.rel)
	if !ok {
		return nil, fmt.Errorf("eval: unknown relation %q in atom %s", n.rel, n.atom)
	}
	if rel.Arity() != len(n.atom.Args) {
		return nil, fmt.Errorf("eval: atom %s has %d args but relation %q has arity %d",
			n.atom, len(n.atom.Args), n.rel, rel.Arity())
	}
	var rows []value.Tuple
	if n.constCol >= 0 {
		rows = rel.Lookup(n.constCol, n.constVal)
	} else {
		rows = rel.Sorted()
	}
	out := newBset(n.out)
	for _, t := range rows {
		if err := x.ctl.Tick(); err != nil {
			return nil, err
		}
		match := true
		for _, c := range n.consts {
			if t[c.pos] != c.v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for _, dp := range n.dups {
			if t[dp[0]] != t[dp[1]] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		asg := make(value.Tuple, len(n.out))
		for i, p := range n.varFirst {
			asg[i] = t[p]
		}
		out.add(x, asg)
	}
	return out, nil
}

func (n *nScan) explain(sb *strings.Builder, d int) {
	indent(sb, d)
	fmt.Fprintf(sb, "scan %s -> %s", n.atom, varList(n.out))
	if n.constCol >= 0 {
		fmt.Fprintf(sb, " [index col %d]", n.constCol)
	}
	sb.WriteString("\n")
}

// ---------------------------------------------------------------- nConj

type fKind int

const (
	fEq fKind = iota
	fNeq
	fNot
)

// filter is an (in)equality or negation conjunct, applied to the bound
// prefix as soon as its free variables are covered.
type filter struct {
	kind  fKind
	l, r  logic.Term // fEq/fNeq
	sub   node       // fNot: the negated operator (anti-join probe)
	frees []logic.Var
}

func (f *filter) String() string {
	switch f.kind {
	case fEq:
		return f.l.String() + "=" + f.r.String()
	case fNeq:
		return f.l.String() + "!=" + f.r.String()
	}
	return "not" + varList(f.frees)
}

// nConj joins its positive conjuncts greedily by actual cardinality
// (smallest first, preferring joinable pairs over cross products) and
// applies filters on bound prefixes the moment they are covered.
// Filters still uncovered after all joins bind (for =) or expand over
// the active domain (for ≠/¬) only the variables they mention.
type nConj struct {
	out       []logic.Var
	positives []node
	filters   []*filter
}

func (n *nConj) vars() []logic.Var { return n.out }

func (n *nConj) exec(x *exec) (*bset, error) {
	sets := make([]*bset, len(n.positives))
	for i, p := range n.positives {
		b, err := p.exec(x)
		if err != nil {
			return nil, err
		}
		sets[i] = b
	}
	applied := make([]bool, len(n.filters))
	covered := func(cur *bset, f *filter) bool {
		idx := varIndex(cur.vars)
		for _, v := range f.frees {
			if _, ok := idx[v]; !ok {
				return false
			}
		}
		return true
	}
	applyCovered := func(cur *bset) (*bset, error) {
		for progress := true; progress; {
			progress = false
			for i, f := range n.filters {
				if applied[i] || !covered(cur, f) {
					continue
				}
				nb, err := x.applyFilter(cur, f)
				if err != nil {
					return nil, err
				}
				cur = nb
				applied[i] = true
				progress = true
			}
		}
		return cur, nil
	}

	var cur *bset
	used := make([]bool, len(sets))
	remaining := len(sets)
	if remaining == 0 {
		cur = unitBset(x)
	} else {
		best := 0
		for i := 1; i < len(sets); i++ {
			if len(sets[i].rows) < len(sets[best].rows) {
				best = i
			}
		}
		cur = sets[best]
		used[best] = true
		remaining--
	}
	var err error
	if cur, err = applyCovered(cur); err != nil {
		return nil, err
	}
	for ; remaining > 0; remaining-- {
		curIdx := varIndex(cur.vars)
		best, bestShares := -1, false
		for i := range sets {
			if used[i] {
				continue
			}
			shares := false
			for _, v := range sets[i].vars {
				if _, ok := curIdx[v]; ok {
					shares = true
					break
				}
			}
			if best < 0 || (shares && !bestShares) ||
				(shares == bestShares && len(sets[i].rows) < len(sets[best].rows)) {
				best, bestShares = i, shares
			}
		}
		used[best] = true
		if cur, err = x.join(cur, sets[best]); err != nil {
			return nil, err
		}
		if cur, err = applyCovered(cur); err != nil {
			return nil, err
		}
	}
	// Filters over variables no positive conjunct binds: an equality
	// binds its unbound side directly; ≠ and ¬ expand just the missing
	// variables over the active domain and then filter.
	for i, f := range n.filters {
		if applied[i] {
			continue
		}
		if f.kind == fEq {
			if cur, err = x.coverEq(cur, f); err != nil {
				return nil, err
			}
		} else {
			miss := varsMissing(f.frees, cur.vars)
			if cur, err = x.expand(cur, miss); err != nil {
				return nil, err
			}
			if cur, err = x.applyFilter(cur, f); err != nil {
				return nil, err
			}
		}
		applied[i] = true
	}
	if varsEqual(cur.vars, n.out) {
		return cur, nil
	}
	proj, err := projection(cur.vars, n.out)
	if err != nil {
		return nil, err
	}
	return x.project(cur, proj, n.out), nil
}

// applyFilter restricts cur by a covered filter.
func (x *exec) applyFilter(cur *bset, f *filter) (*bset, error) {
	idx := varIndex(cur.vars)
	valOf := func(t logic.Term, row value.Tuple) value.V {
		switch u := t.(type) {
		case logic.Const:
			return value.V(u)
		case logic.Var:
			return row[idx[u]]
		}
		panic(fmt.Sprintf("plan: unknown term %T", f.l))
	}
	switch f.kind {
	case fEq, fNeq:
		want := f.kind == fEq
		out := newBset(cur.vars)
		for _, row := range cur.rows {
			if (valOf(f.l, row) == valOf(f.r, row)) == want {
				out.add(x, row)
			}
		}
		return out, nil
	case fNot:
		sub, err := f.sub.exec(x)
		if err != nil {
			return nil, err
		}
		if len(sub.vars) == 0 {
			// Sentence: ¬g drops everything when g holds.
			if len(sub.rows) == 0 {
				return cur, nil
			}
			return newBset(cur.vars), nil
		}
		cols := make([]int, len(sub.vars))
		for i, v := range sub.vars {
			cols[i] = idx[v]
		}
		out := newBset(cur.vars)
		probe := make(value.Tuple, len(cols))
		for _, row := range cur.rows {
			for i, c := range cols {
				probe[i] = row[c]
			}
			if _, hit := sub.keys[x.key(probe)]; !hit {
				out.add(x, row)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("plan: unknown filter kind %d", f.kind)
}

// coverEq makes an equality's terms bound — binding an unbound variable
// to the other side's value where possible, expanding over the active
// domain only for x=x or when both sides are unbound variables — and
// then applies the filter.
func (x *exec) coverEq(cur *bset, f *filter) (*bset, error) {
	for {
		idx := varIndex(cur.vars)
		isBound := func(t logic.Term) bool {
			v, isVar := t.(logic.Var)
			if !isVar {
				return true
			}
			_, ok := idx[v]
			return ok
		}
		lb, rb := isBound(f.l), isBound(f.r)
		if lb && rb {
			return x.applyFilter(cur, f)
		}
		if lb != rb {
			var uv logic.Var
			var src logic.Term
			if lb {
				uv, src = f.r.(logic.Var), f.l
			} else {
				uv, src = f.l.(logic.Var), f.r
			}
			outVars := make([]logic.Var, 0, len(cur.vars)+1)
			outVars = append(outVars, cur.vars...)
			outVars = append(outVars, uv)
			out := newBset(outVars)
			for _, row := range cur.rows {
				var v value.V
				switch u := src.(type) {
				case logic.Const:
					v = value.V(u)
				case logic.Var:
					v = row[idx[u]]
				}
				nr := make(value.Tuple, 0, len(row)+1)
				nr = append(nr, row...)
				nr = append(nr, v)
				out.add(x, nr)
			}
			cur = out
			continue
		}
		// Both sides are unbound variables (x=x or x=y): expand the left
		// over the active domain; the next round binds the right.
		var err error
		if cur, err = x.expand(cur, []logic.Var{f.l.(logic.Var)}); err != nil {
			return nil, err
		}
	}
}

func (n *nConj) explain(sb *strings.Builder, d int) {
	indent(sb, d)
	fmt.Fprintf(sb, "conj -> %s", varList(n.out))
	if len(n.filters) > 0 {
		parts := make([]string, len(n.filters))
		for i, f := range n.filters {
			parts[i] = f.String()
		}
		fmt.Fprintf(sb, " filters[%s]", strings.Join(parts, " "))
	}
	sb.WriteString("\n")
	for _, p := range n.positives {
		p.explain(sb, d+1)
	}
	for _, f := range n.filters {
		if f.sub != nil {
			f.sub.explain(sb, d+1)
		}
	}
}

// --------------------------------------------------------------- nUnion

// nUnion expands both children to the union of their variables over
// the active domain, aligns columns and merges.
type nUnion struct {
	out          []logic.Var
	l, r         node
	lMiss, rMiss []logic.Var
	lProj, rProj []int
}

func (n *nUnion) vars() []logic.Var { return n.out }

func (n *nUnion) exec(x *exec) (*bset, error) {
	out := newBset(n.out)
	for _, side := range []struct {
		child node
		miss  []logic.Var
		proj  []int
	}{{n.l, n.lMiss, n.lProj}, {n.r, n.rMiss, n.rProj}} {
		b, err := side.child.exec(x)
		if err != nil {
			return nil, err
		}
		if b, err = x.expand(b, side.miss); err != nil {
			return nil, err
		}
		for _, t := range b.rows {
			row := make(value.Tuple, len(side.proj))
			for i, c := range side.proj {
				row[i] = t[c]
			}
			out.add(x, row)
		}
	}
	return out, nil
}

func (n *nUnion) explain(sb *strings.Builder, d int) {
	indent(sb, d)
	fmt.Fprintf(sb, "union -> %s\n", varList(n.out))
	n.l.explain(sb, d+1)
	n.r.explain(sb, d+1)
}

// -------------------------------------------------------------- nProject

// nProject drops existentially bound variables. vacuous marks an ∃
// whose bound variables do not all occur in the child: those still
// range over the active domain, so over an EMPTY domain the result is
// empty even when the child holds (with a nonempty domain, expanding
// the missing vars and dropping them again is the identity).
type nProject struct {
	out     []logic.Var
	child   node
	cols    []int
	vacuous bool
}

func (n *nProject) vars() []logic.Var { return n.out }

func (n *nProject) exec(x *exec) (*bset, error) {
	b, err := n.child.exec(x)
	if err != nil {
		return nil, err
	}
	if n.vacuous && len(x.adom) == 0 {
		return newBset(n.out), nil
	}
	return x.project(b, n.cols, n.out), nil
}

func (n *nProject) explain(sb *strings.Builder, d int) {
	indent(sb, d)
	fmt.Fprintf(sb, "project -> %s\n", varList(n.out))
	n.child.explain(sb, d+1)
}

// ----------------------------------------------------------- nComplement

// nComplement is adom^k minus the child — in NNF it appears only over
// atoms and fixpoints, so k is an atom's variable count.
type nComplement struct {
	child node
}

func (n *nComplement) vars() []logic.Var { return n.child.vars() }

func (n *nComplement) exec(x *exec) (*bset, error) {
	b, err := n.child.exec(x)
	if err != nil {
		return nil, err
	}
	return x.complement(b)
}

func (n *nComplement) explain(sb *strings.Builder, d int) {
	indent(sb, d)
	fmt.Fprintf(sb, "complement -> %s\n", varList(n.vars()))
	n.child.explain(sb, d+1)
}

// --------------------------------------------------------------- nForall

// nForall computes ∀x̄ φ as ¬∃x̄ ¬φ: the inner operator is the compiled
// NNF(¬φ), expanded so the bound variables range over the active domain
// (the vacuous-quantification case over an empty domain), projected down
// to the formula's free variables and complemented.
type nForall struct {
	out       []logic.Var
	inner     node
	boundMiss []logic.Var // bound vars absent from inner's bindings
	exProj    []int       // drops the bound vars after expansion
	exVars    []logic.Var
	miss      []logic.Var // out vars absent after the ∃ projection
	proj      []int
}

func (n *nForall) vars() []logic.Var { return n.out }

func (n *nForall) exec(x *exec) (*bset, error) {
	b, err := n.inner.exec(x)
	if err != nil {
		return nil, err
	}
	if b, err = x.expand(b, n.boundMiss); err != nil {
		return nil, err
	}
	b = x.project(b, n.exProj, n.exVars)
	if b, err = x.expand(b, n.miss); err != nil {
		return nil, err
	}
	b = x.project(b, n.proj, n.out)
	return x.complement(b)
}

func (n *nForall) explain(sb *strings.Builder, d int) {
	indent(sb, d)
	fmt.Fprintf(sb, "forall -> %s\n", varList(n.out))
	n.inner.explain(sb, d+1)
}

// ------------------------------------------------------------- nFixpoint

// nFixpoint iterates its compiled body against a growing stage relation
// (inflationary µ⁺ semantics) and then scans the stage applied to the
// fixpoint's argument terms. The body is compiled once; each iteration
// re-executes it with the stage shadowing the recursion relation.
type nFixpoint struct {
	rel      string
	fvars    []logic.Var
	body     node
	bodyMiss []logic.Var
	bodyProj []int
	apply    *nScan
}

func (n *nFixpoint) vars() []logic.Var { return n.apply.out }

func (n *nFixpoint) exec(x *exec) (*bset, error) {
	stage := relation.New(len(n.fvars))
	saved, had := x.overlay[n.rel]
	x.overlay[n.rel] = stage
	defer func() {
		if had {
			x.overlay[n.rel] = saved
		} else {
			delete(x.overlay, n.rel)
		}
	}()
	row := make(value.Tuple, len(n.fvars))
	for iter := 1; ; iter++ {
		// Termination over the finite active domain is guaranteed, but
		// the iteration count is only bounded by |adom|^k — enforce the
		// budget and the deadline here.
		if err := x.ctl.FixpointIter(iter); err != nil {
			return nil, err
		}
		b, err := n.body.exec(x)
		if err != nil {
			return nil, err
		}
		if b, err = x.expand(b, n.bodyMiss); err != nil {
			return nil, err
		}
		grew := false
		for _, t := range b.rows {
			for i, c := range n.bodyProj {
				row[i] = t[c]
			}
			if stage.Insert(row) {
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	return n.apply.exec(x)
}

func (n *nFixpoint) explain(sb *strings.Builder, d int) {
	indent(sb, d)
	fmt.Fprintf(sb, "fixpoint %s%s -> %s\n", n.rel, varList(n.fvars), varList(n.apply.out))
	n.body.explain(sb, d+1)
}

func varsEqual(a, b []logic.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
