package decide

import (
	"context"
	"fmt"

	"ptx/internal/cq"
	"ptx/internal/pt"
	"ptx/internal/runctl"
	"ptx/internal/xmltree"
)

// Equivalence decides τ1 ≡ τ2 (same output tree on every instance) for
// nonrecursive PT(CQ, tuple, O) transducers, implementing the
// characterization of Theorem 2(4) / Claim 4: the dependency graphs must
// match under the (tag-forced) homeomorphism, and along every
// satisfiable root path the per-tag unions of composed queries must be
// c-equivalent (fully equivalent for text children, whose register
// value is printed).
//
// Virtual tags are handled by route compression (Theorem 2(4)'s
// elimination): virtual chains between normal nodes become unions of
// composed queries. Compression requires each virtual route block to
// land on a single dependency-graph node; exotic transducers violating
// this are rejected with an error rather than mis-decided.
func Equivalence(t1, t2 *pt.Transducer) (bool, error) {
	return EquivalenceContext(context.Background(), t1, t2)
}

// EquivalenceContext is Equivalence under a context. The Πp3-hard check
// polls ctx between route expansions and UCQ containment calls, so a
// deadline turns a long-running comparison into a typed
// *runctl.ErrCanceled ("undecided") instead of a hang. Internal panics
// are contained as *runctl.ErrInternal.
func EquivalenceContext(ctx context.Context, t1, t2 *pt.Transducer) (eq bool, err error) {
	defer runctl.Recover(&err, "decide.Equivalence")
	for _, t := range []*pt.Transducer{t1, t2} {
		if err := requireCQ(t, "equivalence"); err != nil {
			return false, err
		}
		cl := t.Classify()
		if cl.Recursive {
			return false, &ErrUndecidable{Problem: "equivalence", Class: cl}
		}
		if cl.Store != pt.TupleStore {
			return false, &ErrUndecidable{Problem: "equivalence", Class: cl}
		}
		if err := t.Validate(); err != nil {
			return false, err
		}
		if t.HasDuplicateTags() {
			return false, fmt.Errorf("decide: equivalence requires distinct tags per rule (Definition 3.1 assumption)")
		}
	}
	if t1.RootTag != t2.RootTag {
		return false, nil
	}
	e := &equivChecker{t1: t1, t2: t2, ctl: runctl.New(ctx, runctl.Limits{})}
	return e.compare(
		pt.GraphNode{State: t1.Start, Tag: t1.RootTag}, nil,
		pt.GraphNode{State: t2.Start, Tag: t2.RootTag}, nil,
		0,
	)
}

// route is one compressed step from a normal node to its next normal
// descendant: the chain of queries through virtual tags plus the final
// query, already composed relative to the path prefix.
type route struct {
	end   pt.GraphNode // the normal node reached
	chain []*cq.NF     // query chain from the root (prefix + steps)
}

// block groups consecutive routes with the same tag (the Sᵢ partition
// of Claim 4).
type block struct {
	tag    string
	end    pt.GraphNode
	chains [][]*cq.NF
}

type equivChecker struct {
	t1, t2 *pt.Transducer
	ctl    *runctl.Controller
}

const maxEquivDepth = 64

// compare recursively checks the pair of normal nodes n1/n2 reached via
// the (satisfiable) query chains c1/c2.
func (e *equivChecker) compare(n1 pt.GraphNode, c1 []*cq.NF, n2 pt.GraphNode, c2 []*cq.NF, depth int) (bool, error) {
	if err := e.ctl.Canceled(); err != nil {
		return false, err
	}
	if depth > maxEquivDepth {
		return false, fmt.Errorf("decide: equivalence undecided: %w",
			&runctl.ErrBudget{Kind: runctl.BudgetDepth, Limit: maxEquivDepth, Observed: depth})
	}
	b1, err := e.normalBlocks(e.t1, n1, c1)
	if err != nil {
		return false, err
	}
	b2, err := e.normalBlocks(e.t2, n2, c2)
	if err != nil {
		return false, err
	}
	if len(b1) != len(b2) {
		return false, nil
	}
	for i := range b1 {
		if err := e.ctl.Canceled(); err != nil {
			return false, err
		}
		if b1[i].tag != b2[i].tag {
			return false, nil
		}
		u1 := make(cq.UCQ, len(b1[i].chains))
		for j, ch := range b1[i].chains {
			full, err := cq.ComposeAll(ch, pt.RegRel)
			if err != nil {
				return false, err
			}
			u1[j] = full
		}
		u2 := make(cq.UCQ, len(b2[i].chains))
		for j, ch := range b2[i].chains {
			full, err := cq.ComposeAll(ch, pt.RegRel)
			if err != nil {
				return false, err
			}
			u2[j] = full
		}
		var same bool
		if b1[i].tag == xmltree.TextTag {
			same, err = cq.EquivalentUCQ(u1, u2)
		} else {
			same, err = cq.CEquivalentUCQ(u1, u2)
		}
		if err != nil {
			return false, err
		}
		if !same {
			return false, nil
		}
		// Recurse using a representative chain per side (any satisfiable
		// chain reaches the same node).
		ok, err := e.compare(b1[i].end, b1[i].chains[0], b2[i].end, b2[i].chains[0], depth+1)
		if err != nil || !ok {
			return ok, err
		}
	}
	return true, nil
}

// normalBlocks computes the compressed, live child blocks of node n
// reached through prefix chain: the sequence of normal tags with their
// route-query unions, skipping routes whose chain is unsatisfiable.
func (e *equivChecker) normalBlocks(t *pt.Transducer, n pt.GraphNode, prefix []*cq.NF) ([]block, error) {
	var routes []route
	if err := collectRoutes(t, n, prefix, &routes, 0); err != nil {
		return nil, err
	}
	// Keep satisfiable routes only. Satisfiability of composed chains is
	// the NP-hard inner step, so poll cancellation per route.
	live := routes[:0]
	for _, r := range routes {
		if err := e.ctl.Canceled(); err != nil {
			return nil, err
		}
		ok, err := cq.PathSatisfiable(r.chain, pt.RegRel)
		if err != nil {
			return nil, err
		}
		if ok {
			live = append(live, r)
		}
	}
	// Group consecutive same-tag routes into blocks.
	var blocks []block
	for _, r := range live {
		if len(blocks) > 0 && blocks[len(blocks)-1].tag == r.end.Tag {
			b := &blocks[len(blocks)-1]
			if b.end != r.end {
				return nil, fmt.Errorf("decide: virtual routes to tag %q land on %s and %s; unsupported",
					r.end.Tag, b.end, r.end)
			}
			b.chains = append(b.chains, r.chain)
			continue
		}
		blocks = append(blocks, block{tag: r.end.Tag, end: r.end, chains: [][]*cq.NF{r.chain}})
	}
	// Distinct-tag invariants make non-consecutive repeats impossible in
	// the normal case; with virtual routes they can recur — reject to
	// stay sound.
	seen := make(map[string]int)
	for i, b := range blocks {
		if j, ok := seen[b.tag]; ok && j != i {
			return nil, fmt.Errorf("decide: tag %q occurs in non-consecutive blocks; unsupported interleaving", b.tag)
		}
		seen[b.tag] = i
	}
	return blocks, nil
}

// collectRoutes walks item edges from n, composing through virtual tags,
// and emits a route at each normal target.
func collectRoutes(t *pt.Transducer, n pt.GraphNode, chain []*cq.NF, out *[]route, depth int) error {
	if depth > maxEquivDepth {
		return fmt.Errorf("decide: virtual route depth exceeded %d", maxEquivDepth)
	}
	rule, ok := t.Rule(n.State, n.Tag)
	if !ok {
		return nil
	}
	for _, it := range rule.Items {
		nf, err := itemNF(it)
		if err != nil {
			return err
		}
		if len(chain) == 0 && nf.UsesRel(pt.RegRel) {
			// Root register is empty: this item never fires.
			continue
		}
		next := append(append([]*cq.NF{}, chain...), nf)
		child := pt.GraphNode{State: it.State, Tag: it.Tag}
		if t.Virtual[it.Tag] {
			if err := collectRoutes(t, child, next, out, depth+1); err != nil {
				return err
			}
			continue
		}
		*out = append(*out, route{end: child, chain: next})
	}
	return nil
}

// OutputUCQ implements Proposition 6(1): a nonrecursive PT(CQ, tuple, O)
// transducer, viewed as a relational query with output label, equals the
// union of the compositions of the query chains along all root paths
// reaching that label.
func OutputUCQ(t *pt.Transducer, label string) (cq.UCQ, error) {
	if err := requireCQ(t, "UCQ extraction"); err != nil {
		return nil, err
	}
	cl := t.Classify()
	if cl.Recursive || cl.Store != pt.TupleStore {
		return nil, fmt.Errorf("decide: UCQ extraction needs PTnr(CQ, tuple, O), got %s", cl)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	g := t.DependencyGraph()
	var u cq.UCQ
	var walkErr error
	g.SimplePaths(func(p *pt.Path) bool {
		if len(p.Nodes) < 2 || p.End().Tag != label {
			return true
		}
		qs, err := pathQueries(t, p)
		if err != nil {
			walkErr = err
			return false
		}
		if qs == nil {
			return true
		}
		full, err := cq.ComposeAll(qs, pt.RegRel)
		if err != nil {
			walkErr = err
			return false
		}
		if full.Satisfiable() {
			u = append(u, full)
		}
		return true
	})
	return u, walkErr
}
