package decide

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
)

// OutputFOFormula implements Proposition 6(2): a nonrecursive
// PT(FO, tuple, O) transducer, viewed as a relational query with the
// given output label, is equivalent to a single FO formula — the
// disjunction over all root paths of the composed item formulas. The
// returned formula's free variables are h0..h(k-1) where k = Θ(label).
//
// Composition substitutes, for every Reg(t̄) occurrence in a step
// formula, a fresh copy of the previous step's formula with its head
// identified with t̄; this is sound in arbitrary FO contexts because
// tuple registers hold exactly one tuple.
func OutputFOFormula(t *pt.Transducer, label string) (logic.Formula, []logic.Var, error) {
	cl := t.Classify()
	if cl.Logic > logic.FO {
		return nil, nil, fmt.Errorf("decide: FO extraction needs at most FO, got %s", cl)
	}
	if cl.Recursive || cl.Store != pt.TupleStore {
		return nil, nil, fmt.Errorf("decide: FO extraction needs PTnr(·, tuple, O), got %s", cl)
	}
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	arity, ok := t.Arities[label]
	if !ok {
		return nil, nil, fmt.Errorf("decide: unknown output label %q", label)
	}
	head := make([]logic.Var, arity)
	for i := range head {
		head[i] = logic.Var(fmt.Sprintf("h%d", i))
	}

	g := t.DependencyGraph()
	var disjuncts []logic.Formula
	var walkErr error
	fresh := 0
	g.SimplePaths(func(p *pt.Path) bool {
		if len(p.Nodes) < 2 || p.End().Tag != label {
			return true
		}
		f, vars, skip, err := composePathFO(t, p, &fresh)
		if err != nil {
			walkErr = err
			return false
		}
		if skip {
			return true
		}
		// Rename the final head onto the standard h-variables.
		sub := make(map[logic.Var]logic.Term, len(vars))
		for i, v := range vars {
			sub[v] = head[i]
		}
		disjuncts = append(disjuncts, logic.Substitute(f, sub))
		return true
	})
	if walkErr != nil {
		return nil, nil, walkErr
	}
	if len(disjuncts) == 0 {
		return logic.False, head, nil
	}
	return logic.Disj(disjuncts...), head, nil
}

// composePathFO composes the item formulas along a dependency-graph
// path; skip is true when the first item references the (empty) root
// register and therefore never fires.
func composePathFO(t *pt.Transducer, p *pt.Path, fresh *int) (logic.Formula, []logic.Var, bool, error) {
	var cur logic.Formula
	var curHead []logic.Var
	for i, itemIdx := range p.Items {
		from := p.Nodes[i]
		rule, ok := t.Rule(from.State, from.Tag)
		if !ok || itemIdx >= len(rule.Items) {
			return nil, nil, false, fmt.Errorf("decide: path references missing rule (%s,%s)", from.State, from.Tag)
		}
		q := rule.Items[itemIdx].Query
		if i == 0 {
			for _, rel := range logic.Relations(q.F) {
				if rel == pt.RegRel {
					return nil, nil, true, nil
				}
			}
			cur = q.F
			curHead = q.Head()
			continue
		}
		inner, innerHead := cur, curHead
		cur = logic.ReplaceAtom(q.F, pt.RegRel, func(args []logic.Term) logic.Formula {
			*fresh++
			suffix := fmt.Sprintf("_f%d", *fresh)
			copyF := logic.RenameAllVars(inner, suffix)
			copyHead := make([]logic.Var, len(innerHead))
			parts := []logic.Formula{copyF}
			for j, h := range innerHead {
				copyHead[j] = logic.Var(string(h) + suffix)
				parts = append(parts, logic.EqT(copyHead[j], args[j]))
			}
			return logic.Ex(copyHead, logic.Conj(parts...))
		})
		curHead = q.Head()
	}
	return cur, curHead, false, nil
}
