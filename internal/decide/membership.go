package decide

import (
	"context"
	"errors"
	"fmt"

	"ptx/internal/eval"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/value"
	"ptx/internal/xmltree"
)

// MembershipOptions bounds the small-model search of Theorem 1(2).
type MembershipOptions struct {
	// FreshValues is the number of fresh domain constants u0,u1,…
	// available beyond the transducer's own constants. Claim 2 bounds the
	// instance size by K·|t| source tuples, so K·|t| fresh values always
	// suffice; smaller bounds trade completeness for speed.
	FreshValues int
	// MaxTuplesPerRel caps each relation of the guessed instance.
	MaxTuplesPerRel int
	// MaxCandidates aborts the search after this many candidate
	// instances (0 = unlimited). When the search aborts the result is
	// "unknown", reported as an error.
	MaxCandidates int
}

// DefaultMembershipOptions sizes the search for a target tree t per the
// small-model property: |I'| ≤ K·|t| (Claim 2) where K is the maximal
// number of relation atoms in any rule query, times the virtual depth
// factor D for nonrecursive virtual transducers (Theorem 2(3)).
func DefaultMembershipOptions(t *pt.Transducer, target *xmltree.Tree) MembershipOptions {
	k := 1
	for _, r := range t.Rules() {
		for _, it := range r.Items {
			n := len(logic.Relations(it.Query.F))
			if n > k {
				k = n
			}
		}
	}
	size := k * target.Size()
	if len(t.Virtual) > 0 && !t.IsRecursive() {
		size *= t.DependencyGraph().LongestPathLen()
	}
	return MembershipOptions{FreshValues: size, MaxTuplesPerRel: size, MaxCandidates: 2_000_000}
}

// Membership decides whether some instance I yields τ(I) = target. It
// implements the Σp2 algorithms of Theorem 1(2) (PT(CQ, tuple, normal))
// and Theorem 2(3) (PTnr(CQ, tuple, virtual)) as a bounded exhaustive
// search over small instances (sound and complete within the Claim-2
// bounds, extended by the virtual-depth factor D for the nonrecursive
// virtual case). For normal-output transducers a PTIME structural
// refutation pass (state annotation) rejects impossible tree shapes
// first. Recursive transducers with virtual nodes, and relation stores,
// are undecidable (Theorem 1(2)) and rejected.
func Membership(t *pt.Transducer, target *xmltree.Tree, opts MembershipOptions) (bool, error) {
	return MembershipContext(context.Background(), t, target, opts)
}

// MembershipContext is Membership under a context: the small-model
// search polls ctx between candidate instances and inside each
// transformation run, so a deadline yields a typed *runctl.ErrCanceled
// ("undecided") instead of a hang. Exhausting MaxCandidates likewise
// yields an error wrapping *runctl.ErrBudget. Internal panics are
// contained as *runctl.ErrInternal.
func MembershipContext(ctx context.Context, t *pt.Transducer, target *xmltree.Tree, opts MembershipOptions) (member bool, err error) {
	defer runctl.Recover(&err, "decide.Membership")
	if err := requireCQ(t, "membership"); err != nil {
		return false, err
	}
	cl := t.Classify()
	if cl.Store != pt.TupleStore {
		return false, &ErrUndecidable{Problem: "membership", Class: cl}
	}
	if cl.Output == pt.VirtualOutput && cl.Recursive {
		return false, &ErrUndecidable{Problem: "membership", Class: cl}
	}
	if err := t.Validate(); err != nil {
		return false, err
	}
	if t.HasDuplicateTags() {
		return false, fmt.Errorf("decide: membership requires distinct tags per rule (Definition 3.1 assumption)")
	}
	if target.Root.Tag != t.RootTag {
		return false, nil
	}
	if cl.Output == pt.NormalOutput && !AnnotateStates(t, target) {
		return false, nil
	}
	return searchInstances(ctx, t, target, opts)
}

// AnnotateStates runs the PTIME structural pass: walking the target
// top-down, every child's tag must appear on the right-hand side of its
// parent's (uniquely determined) rule, children must be ordered by rule
// item, and leaf/text structure must be consistent. It returns false if
// the tree shape is impossible regardless of the instance.
func AnnotateStates(t *pt.Transducer, target *xmltree.Tree) bool {
	type frame struct {
		node  *xmltree.Node
		state string
	}
	stack := []frame{{node: target.Root, state: t.Start}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rule, ok := t.Rule(f.state, f.node.Tag)
		if !ok || len(rule.Items) == 0 {
			if len(f.node.Children) != 0 {
				return false
			}
			continue
		}
		// Children must appear in nondecreasing rule-item order.
		itemIdx := make(map[string]int, len(rule.Items))
		stateOf := make(map[string]string, len(rule.Items))
		for i, it := range rule.Items {
			itemIdx[it.Tag] = i
			stateOf[it.Tag] = it.State
		}
		last := -1
		for _, c := range f.node.Children {
			i, ok := itemIdx[c.Tag]
			if !ok || i < last {
				return false
			}
			last = i
			stack = append(stack, frame{node: c, state: stateOf[c.Tag]})
		}
	}
	return true
}

// searchInstances enumerates instances over the canonical domain and
// compares τ(I) with the target tree.
func searchInstances(ctx context.Context, t *pt.Transducer, target *xmltree.Tree, opts MembershipOptions) (bool, error) {
	ctl := runctl.New(ctx, runctl.Limits{})
	domain := canonicalDomain(t, target, opts.FreshValues)
	names := t.Schema.Names()

	// All candidate tuples per relation, in deterministic order.
	tuplesFor := make(map[string][]value.Tuple)
	for _, n := range names {
		a, _ := t.Schema.Arity(n)
		tuplesFor[n] = allTuples(domain, a)
	}

	budget := opts.MaxCandidates
	// Virtual nodes inflate ξ beyond the target's size: allow a chain of
	// virtual hops per visible node (bounded by the dependency graph).
	runBudget := 4 * target.Size()
	if len(t.Virtual) > 0 {
		depth := t.DependencyGraph().LongestPathLen()
		if depth < 1 {
			depth = 1
		}
		runBudget *= depth + 1
	}

	// Enumerate subsets relation by relation via recursive choice of
	// tuple subsets with bounded cardinality.
	inst := relation.NewInstance(t.Schema)
	var tryRel func(ri int) (bool, error)
	tryRel = func(ri int) (bool, error) {
		if ri == len(names) {
			// Each candidate costs a full transducer run, so poll the
			// context directly rather than through the sampled Tick.
			if err := ctl.Canceled(); err != nil {
				return false, err
			}
			if budget > 0 {
				budget--
				if budget == 0 {
					return false, fmt.Errorf("decide: membership undecided: %w",
						&runctl.ErrBudget{Kind: runctl.BudgetCandidates, Limit: opts.MaxCandidates, Observed: opts.MaxCandidates})
				}
			}
			out, err := t.OutputContext(ctx, inst, pt.Options{MaxNodes: runBudget})
			if err != nil {
				// A blown node budget just rules this candidate out; any
				// other error (including cancellation) aborts the search.
				var be *runctl.ErrBudget
				if errors.As(err, &be) && be.Kind == runctl.BudgetNodes {
					return false, nil
				}
				return false, err
			}
			// Structural equality instead of comparing canonical strings:
			// no per-candidate document materialization.
			return out.Equal(target), nil
		}
		name := names[ri]
		cands := tuplesFor[name]
		rel := inst.Rel(name)
		var choose func(from, count int) (bool, error)
		choose = func(from, count int) (bool, error) {
			ok, err := tryRel(ri + 1)
			if err != nil || ok {
				return ok, err
			}
			if count >= opts.MaxTuplesPerRel {
				return false, nil
			}
			for i := from; i < len(cands); i++ {
				rel.Add(cands[i])
				ok, err := choose(i+1, count+1)
				rel.Remove(cands[i])
				if err != nil || ok {
					return ok, err
				}
			}
			return false, nil
		}
		return choose(0, 0)
	}
	return tryRel(0)
}

// canonicalDomain is the constants of the transducer plus the target's
// text payload values plus n fresh values.
func canonicalDomain(t *pt.Transducer, target *xmltree.Tree, n int) []value.V {
	seen := make(map[value.V]bool)
	var out []value.V
	add := func(v value.V) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, r := range t.Rules() {
		for _, it := range r.Items {
			for _, c := range logic.Constants(it.Query.F) {
				add(c)
			}
		}
	}
	target.Walk(func(nd *xmltree.Node) bool {
		if nd.IsText() && nd.Text != "" {
			add(value.V(nd.Text))
		}
		return true
	})
	for i := 0; i < n; i++ {
		add(value.V(fmt.Sprintf("u%d", i)))
	}
	value.SortValues(out)
	return out
}

// allTuples enumerates domain^arity in lexicographic order.
func allTuples(domain []value.V, arity int) []value.Tuple {
	if arity == 0 {
		return []value.Tuple{{}}
	}
	var out []value.Tuple
	t := make(value.Tuple, arity)
	var rec func(i int)
	rec = func(i int) {
		if i == arity {
			out = append(out, t.Clone())
			return
		}
		for _, d := range domain {
			t[i] = d
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// evalQueryOnInstance is a small helper used by tests to evaluate a
// rule query against an instance and register.
func evalQueryOnInstance(q *logic.Query, inst *relation.Instance, reg *relation.Relation) (*relation.Relation, error) {
	env := eval.NewEnv(inst)
	if reg != nil {
		env = env.WithRelation(pt.RegRel, reg)
	}
	return eval.EvalQuery(q, env)
}
