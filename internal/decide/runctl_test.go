package decide

import (
	"context"
	"errors"
	"testing"
	"time"

	"ptx/internal/runctl"
	"ptx/internal/xmltree"
)

func TestEquivalenceCanceledContext(t *testing.T) {
	t1 := copyATransducer(false, "")
	t2 := copyATransducer(false, "")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the comparison starts
	_, err := EquivalenceContext(ctx, t1, t2)
	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *runctl.ErrCanceled", err)
	}
}

func TestEquivalenceDeadline(t *testing.T) {
	// An already-expired deadline must surface as a typed cancellation
	// that unwraps to context.DeadlineExceeded, quickly.
	t1 := copyATransducer(false, "")
	t2 := copyATransducer(true, "k")
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	start := time.Now()
	_, err := EquivalenceContext(ctx, t1, t2)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("expired-deadline check took %v", elapsed)
	}
	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *runctl.ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause should unwrap to DeadlineExceeded, got %v", err)
	}
}

func TestEmptinessCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A virtual-store transducer takes the path-search route, which
	// polls the controller per candidate path.
	_, err := EmptinessContext(ctx, virtualTransducer(true))
	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *runctl.ErrCanceled", err)
	}
}

func TestMembershipCanceledContext(t *testing.T) {
	tr := liveTransducer()
	target := xmltree.MustParse("r(a)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MembershipContext(ctx, tr, target, DefaultMembershipOptions(tr, target))
	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *runctl.ErrCanceled", err)
	}
}
