package decide

import (
	"math/rand"
	"testing"

	"ptx/internal/cq"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// randomView builds a random two-level nonrecursive PT(CQ, tuple,
// normal) transducer over E(2): the root spawns an a-child per result
// of a level-1 query; a-nodes optionally spawn c-children via a level-2
// query over the register.
func randomView(rng *rand.Rand) *pt.Transducer {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	level1 := []logic.Formula{
		logic.Ex([]logic.Var{y}, logic.R("E", x, y)),
		logic.Ex([]logic.Var{y}, logic.R("E", y, x)),
		logic.R("E", x, x),
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R("E", x, y), logic.NeqT(x, y))),
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R("E", x, y), logic.EqT(y, logic.Const("0")))),
	}
	level2 := []logic.Formula{
		logic.Ex([]logic.Var{x}, logic.Conj(logic.R(pt.RegRel, x), logic.R("E", x, z))),
		logic.Ex([]logic.Var{x}, logic.Conj(logic.R(pt.RegRel, x), logic.R("E", z, x))),
		logic.R(pt.RegRel, z),
		logic.Conj(logic.R(pt.RegRel, z), logic.NeqT(z, logic.Const("0"))),
	}
	s := relation.NewSchema().MustDeclare("E", 2)
	t := pt.New("fuzz", s, "q0", "r")
	t.DeclareTag("a", 1)
	t.AddRule("q0", "r", pt.Item("q", "a",
		logic.MustQuery([]logic.Var{x}, nil, level1[rng.Intn(len(level1))])))
	if rng.Intn(2) == 0 {
		t.DeclareTag("c", 1)
		t.AddRule("q", "a", pt.Item("qc", "c",
			logic.MustQuery([]logic.Var{z}, nil, level2[rng.Intn(len(level2))])))
		t.AddRule("qc", "c")
	} else {
		t.AddRule("q", "a")
	}
	return t
}

// allInstances enumerates every E-instance over the given domain.
func allInstances(domain []string) []*relation.Instance {
	var tuples [][2]string
	for _, a := range domain {
		for _, b := range domain {
			tuples = append(tuples, [2]string{a, b})
		}
	}
	n := len(tuples)
	var out []*relation.Instance
	for mask := 0; mask < 1<<n; mask++ {
		inst := relation.NewInstance(relation.NewSchema().MustDeclare("E", 2))
		for i, tp := range tuples {
			if mask&(1<<i) != 0 {
				inst.Add("E", tp[0], tp[1])
			}
		}
		out = append(out, inst)
	}
	return out
}

// separated reports whether some instance distinguishes the transducers.
func separated(t *testing.T, t1, t2 *pt.Transducer, insts []*relation.Instance) (bool, *relation.Instance) {
	t.Helper()
	for _, inst := range insts {
		o1, err := t1.Output(inst, pt.Options{MaxNodes: 10000})
		if err != nil {
			t.Fatal(err)
		}
		o2, err := t2.Output(inst, pt.Options{MaxNodes: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if !o1.Equal(o2) {
			return true, inst
		}
	}
	return false, nil
}

// TestEquivalenceFuzzAgainstBruteForce cross-validates the Claim 4
// equivalence checker against exhaustive enumeration of all E-instances
// over a 2-element domain (extending to 3 elements when the checker
// claims inequivalence but no small witness exists — inequivalence may
// genuinely need a larger domain).
func TestEquivalenceFuzzAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	small := allInstances([]string{"0", "1"})
	var medium []*relation.Instance // built lazily: 512 instances

	for trial := 0; trial < 120; trial++ {
		t1, t2 := randomView(rng), randomView(rng)
		decided, err := Equivalence(t1, t2)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s\n%s", trial, err, t1, t2)
		}
		sep, witness := separated(t, t1, t2, small)
		if decided && sep {
			t.Fatalf("trial %d: checker says equivalent but instance %s separates\n%s\n%s",
				trial, witness, t1, t2)
		}
		if !decided && !sep {
			// Look for a witness over a 3-element domain before declaring
			// a checker bug.
			if medium == nil {
				medium = allInstances([]string{"0", "1", "2"})
			}
			sep3, _ := separated(t, t1, t2, medium)
			if !sep3 {
				t.Fatalf("trial %d: checker says inequivalent but no witness over 3 elements\n%s\n%s",
					trial, t1, t2)
			}
		}
	}
}

// TestMembershipFuzzAgainstExecution: every tree the transducer actually
// produces on a small instance is a member; mutated trees that no
// execution produced are (usually) refuted by the search.
func TestMembershipFuzzAgainstExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	insts := allInstances([]string{"0", "1"})
	for trial := 0; trial < 25; trial++ {
		tr := randomView(rng)
		inst := insts[rng.Intn(len(insts))]
		produced, err := tr.Output(inst, pt.Options{MaxNodes: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if produced.Size() > 6 {
			continue // keep the search cheap
		}
		ok, err := Membership(tr, produced, MembershipOptions{
			FreshValues: 2, MaxTuplesPerRel: 4, MaxCandidates: 2_000_000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !ok {
			t.Fatalf("trial %d: produced tree %s not recognized as a member of\n%s\n(instance %s)",
				trial, produced.Canonical(), tr, inst)
		}
	}
}

// TestOutputUCQFuzz: the UCQ extraction agrees with execution on every
// random view and instance.
func TestOutputUCQFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	insts := allInstances([]string{"0", "1"})
	for trial := 0; trial < 40; trial++ {
		tr := randomView(rng)
		label := "a"
		if _, ok := tr.Arities["c"]; ok && rng.Intn(2) == 0 {
			label = "c"
		}
		u, err := OutputUCQ(tr, label)
		if err != nil {
			t.Fatal(err)
		}
		inst := insts[rng.Intn(len(insts))]
		fromTr, err := tr.OutputRelation(inst, label, pt.Options{MaxNodes: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if len(u) == 0 {
			if !fromTr.Empty() {
				t.Fatalf("trial %d: empty UCQ but nonempty execution", trial)
			}
			continue
		}
		fromU, err := cq.EvalUCQ(u, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTr.Equal(fromU) {
			t.Fatalf("trial %d (%s): execution %s vs UCQ %s\n%s\ninstance %s",
				trial, label, fromTr, fromU, tr, inst)
		}
	}
}
