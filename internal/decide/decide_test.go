package decide

import (
	"math/rand"
	"testing"

	"ptx/internal/cq"
	"ptx/internal/eval"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/relation"
	"ptx/internal/value"
	"ptx/internal/xmltree"
)

var (
	x = logic.Var("x")
	y = logic.Var("y")
)

// singleR is the schema {R1(1)}, graphS is {E(2)}.
func schemaR() *relation.Schema { return relation.NewSchema().MustDeclare("R1", 1) }

// liveTransducer spawns one a-child per R1 value: always nonempty when
// R1 is.
func liveTransducer() *pt.Transducer {
	t := pt.New("live", schemaR(), "q0", "r")
	t.DeclareTag("a", 1)
	t.AddRule("q0", "r", pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	t.AddRule("q", "a")
	return t
}

// deadTransducer has an unsatisfiable start query.
func deadTransducer() *pt.Transducer {
	t := pt.New("dead", schemaR(), "q0", "r")
	t.DeclareTag("a", 1)
	dead := logic.Conj(logic.EqT(x, logic.Const("c")), logic.NeqT(x, logic.Const("c")))
	t.AddRule("q0", "r", pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, dead)))
	t.AddRule("q", "a")
	return t
}

func TestEmptinessNormal(t *testing.T) {
	got, err := Emptiness(liveTransducer())
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("live transducer should be nonempty")
	}
	got, err = Emptiness(deadTransducer())
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("dead transducer should be empty")
	}
}

func TestEmptinessTau1(t *testing.T) {
	got, err := Emptiness(registrar.Tau1())
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("τ1 produces trees for CS-course instances")
	}
}

func TestEmptinessRejectsFO(t *testing.T) {
	_, err := Emptiness(registrar.Tau3())
	if err == nil {
		t.Fatal("FO emptiness must be rejected (undecidable)")
	}
	if _, ok := err.(*ErrUndecidable); !ok {
		t.Fatalf("want ErrUndecidable, got %T", err)
	}
}

// virtualTransducer reaches a normal tag b only through a virtual chain
// v whose query chain is satisfiable iff ok.
func virtualTransducer(ok bool) *pt.Transducer {
	t := pt.New("virt", schemaR(), "q0", "r")
	t.DeclareTag("v", 1).DeclareTag("b", 1)
	t.MarkVirtual("v")
	start := logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))
	var stepF logic.Formula
	if ok {
		stepF = logic.R(pt.RegRel, x)
	} else {
		stepF = logic.Conj(logic.R(pt.RegRel, x), logic.EqT(x, logic.Const("0")), logic.NeqT(x, logic.Const("0")))
	}
	t.AddRule("q0", "r", pt.Item("qv", "v", start))
	t.AddRule("qv", "v", pt.Item("qb", "b", logic.MustQuery([]logic.Var{x}, nil, stepF)))
	t.AddRule("qb", "b")
	return t
}

func TestEmptinessVirtual(t *testing.T) {
	got, err := Emptiness(virtualTransducer(true))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("satisfiable virtual chain should be nonempty")
	}
	got, err = Emptiness(virtualTransducer(false))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("dead virtual chain should be empty")
	}
}

func TestEmptinessVirtualOnlyVirtualChildren(t *testing.T) {
	// All non-root tags virtual: output is always the bare root.
	t1 := pt.New("allvirtual", schemaR(), "q0", "r")
	t1.DeclareTag("v", 1)
	t1.MarkVirtual("v")
	t1.AddRule("q0", "r", pt.Item("q", "v", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	t1.AddRule("q", "v", pt.Item("q", "v", logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))))
	got, err := Emptiness(t1)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("virtual-only transducer never emits a visible node")
	}
}

func TestEmptinessMatchesExecution(t *testing.T) {
	// Cross-check the decision against actually running the transducer
	// on a generic instance.
	for _, tr := range []*pt.Transducer{liveTransducer(), deadTransducer(), virtualTransducer(true), virtualTransducer(false)} {
		dec, err := Emptiness(tr)
		if err != nil {
			t.Fatal(err)
		}
		inst := relation.NewInstance(schemaR())
		inst.Add("R1", "a")
		inst.Add("R1", "b")
		out, err := tr.Output(inst, pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ran := out.Size() > 1
		if dec != ran {
			t.Errorf("%s: decision %v but execution on generic instance gives %v", tr.Name, dec, ran)
		}
	}
}

func TestMembershipPositive(t *testing.T) {
	tr := liveTransducer()
	target := xmltree.MustParse("r(a)")
	ok, err := Membership(tr, target, MembershipOptions{FreshValues: 2, MaxTuplesPerRel: 2, MaxCandidates: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("r(a) is producible with |R1| = 1")
	}
	target2 := xmltree.MustParse("r(a,a,a)")
	ok, err = Membership(tr, target2, MembershipOptions{FreshValues: 3, MaxTuplesPerRel: 3, MaxCandidates: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("r(a,a,a) is producible with |R1| = 3")
	}
}

func TestMembershipNegativeStructural(t *testing.T) {
	tr := liveTransducer()
	// Tag b never occurs in rules: fast refutation.
	if AnnotateStates(tr, xmltree.MustParse("r(b)")) {
		t.Error("structural pass should reject unknown tag")
	}
	ok, err := Membership(tr, xmltree.MustParse("r(b)"), DefaultMembershipOptions(tr, xmltree.MustParse("r(b)")))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("r(b) is not producible")
	}
}

func TestMembershipNegativeSemantic(t *testing.T) {
	// A transducer that always produces both an a and a b child when R1
	// is nonempty can never produce a tree with an a child only.
	tr := pt.New("ab", schemaR(), "q0", "r")
	tr.DeclareTag("a", 1).DeclareTag("b", 1)
	q := logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))
	tr.AddRule("q0", "r", pt.Item("q", "a", q), pt.Item("q", "b", q))
	tr.AddRule("q", "a")
	tr.AddRule("q", "b")
	target := xmltree.MustParse("r(a)")
	ok, err := Membership(tr, target, MembershipOptions{FreshValues: 2, MaxTuplesPerRel: 2, MaxCandidates: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("a-only tree is not producible (b always accompanies a)")
	}
}

func TestMembershipTrivialTree(t *testing.T) {
	tr := liveTransducer()
	ok, err := Membership(tr, xmltree.MustParse("r"), MembershipOptions{FreshValues: 1, MaxTuplesPerRel: 1, MaxCandidates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the bare root arises from the empty instance")
	}
}

func TestMembershipChildOrder(t *testing.T) {
	// Children must respect rule item order: with items (a then b), a
	// tree r(b,a) is structurally impossible.
	tr := pt.New("ab", schemaR(), "q0", "r")
	tr.DeclareTag("a", 1).DeclareTag("b", 1)
	q := logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))
	tr.AddRule("q0", "r", pt.Item("q", "a", q), pt.Item("q", "b", q))
	tr.AddRule("q", "a")
	tr.AddRule("q", "b")
	if AnnotateStates(tr, xmltree.MustParse("r(b,a)")) {
		t.Error("out-of-order children should be refuted structurally")
	}
	if !AnnotateStates(tr, xmltree.MustParse("r(a,b)")) {
		t.Error("in-order children are structurally fine")
	}
}

func TestMembershipNonrecursiveVirtual(t *testing.T) {
	// Theorem 2(3): membership stays Σp2-decidable for
	// PTnr(CQ, tuple, virtual). The live virtual hop can produce r(b);
	// the dead one cannot.
	opts := MembershipOptions{FreshValues: 2, MaxTuplesPerRel: 2, MaxCandidates: 100000}
	ok, err := Membership(virtualTransducer(true), xmltree.MustParse("r(b)"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("r(b) is producible through the virtual hop")
	}
	ok, err = Membership(virtualTransducer(false), xmltree.MustParse("r(b)"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("dead virtual chain cannot produce r(b)")
	}
}

func TestMembershipRejectsRecursiveVirtual(t *testing.T) {
	// Recursive + virtual stays undecidable (Theorem 1(2)).
	tr := pt.New("recvirt", schemaR(), "q0", "r")
	tr.DeclareTag("v", 1).DeclareTag("b", 1)
	tr.MarkVirtual("v")
	tr.AddRule("q0", "r", pt.Item("qv", "v", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	tr.AddRule("qv", "v",
		pt.Item("qv", "v", logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))),
		pt.Item("qb", "b", logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))))
	tr.AddRule("qb", "b")
	if _, err := Membership(tr, xmltree.MustParse("r(b)"), MembershipOptions{}); err == nil {
		t.Error("recursive virtual membership must be rejected")
	}
}

// --- equivalence -------------------------------------------------------

func copyATransducer(extraNeq bool, cval string) *pt.Transducer {
	t := pt.New("cpy", schemaR(), "q0", "r")
	t.DeclareTag("a", 1).DeclareTag("text", 1)
	f := logic.Formula(logic.R("R1", x))
	if extraNeq {
		f = logic.Conj(logic.R("R1", x), logic.NeqT(x, logic.Const(cval)))
	}
	t.AddRule("q0", "r", pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, f)))
	t.AddRule("q", "a", pt.Item("qt", "text", logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))))
	t.AddRule("qt", "text")
	return t
}

func TestEquivalencePositive(t *testing.T) {
	t1 := copyATransducer(false, "")
	// Same view with a redundant self-join in the start query.
	t2 := pt.New("cpy2", schemaR(), "q0", "r")
	t2.DeclareTag("a", 1).DeclareTag("text", 1)
	f := logic.Ex([]logic.Var{y}, logic.Conj(logic.R("R1", x), logic.R("R1", y)))
	t2.AddRule("q0", "r", pt.Item("p", "a", logic.MustQuery([]logic.Var{x}, nil, f)))
	t2.AddRule("p", "a", pt.Item("pt2", "text", logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))))
	t2.AddRule("pt2", "text")
	ok, err := Equivalence(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("redundant self-join should not change the view")
	}
}

func TestEquivalenceNegative(t *testing.T) {
	t1 := copyATransducer(false, "")
	t2 := copyATransducer(true, "k")
	ok, err := Equivalence(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("x≠'k' filter changes the view on instances containing k")
	}
	// Cross-check on a witness instance.
	inst := relation.NewInstance(schemaR())
	inst.Add("R1", "k")
	o1, _ := t1.Output(inst, pt.Options{})
	o2, _ := t2.Output(inst, pt.Options{})
	if o1.Equal(o2) {
		t.Error("witness instance should separate the transducers")
	}
}

func TestEquivalenceTextMatters(t *testing.T) {
	// Two views emitting the same *number* of children but different
	// text payloads: c-equivalence of the a-level holds, but the text
	// level must use full equivalence and fail.
	mk := func(col int) *pt.Transducer {
		s := relation.NewSchema().MustDeclare("E", 2)
		t := pt.New("txt", s, "q0", "r")
		t.DeclareTag("a", 2).DeclareTag("text", 1)
		t.AddRule("q0", "r", pt.Item("q", "a",
			logic.MustQuery([]logic.Var{x, y}, nil, logic.R("E", x, y))))
		var proj logic.Formula
		if col == 0 {
			proj = logic.Ex([]logic.Var{y}, logic.R(pt.RegRel, x, y))
		} else {
			proj = logic.Ex([]logic.Var{y}, logic.R(pt.RegRel, y, x))
		}
		t.AddRule("q", "a", pt.Item("qt", "text", logic.MustQuery([]logic.Var{x}, nil, proj)))
		t.AddRule("qt", "text")
		return t
	}
	ok, err := Equivalence(mk(0), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("projecting different columns into text differs")
	}
	ok, err = Equivalence(mk(0), mk(0))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("identical views are equivalent")
	}
}

func TestEquivalenceDeadBranchIgnored(t *testing.T) {
	// t2 has an extra child item whose query is unsatisfiable: still
	// equivalent to t1.
	t1 := copyATransducer(false, "")
	t2 := pt.New("cpy3", schemaR(), "q0", "r")
	t2.DeclareTag("a", 1).DeclareTag("b", 1).DeclareTag("text", 1)
	dead := logic.Conj(logic.EqT(x, logic.Const("0")), logic.NeqT(x, logic.Const("0")))
	t2.AddRule("q0", "r",
		pt.Item("q", "a", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))),
		pt.Item("q", "b", logic.MustQuery([]logic.Var{x}, nil, dead)),
	)
	t2.AddRule("q", "a", pt.Item("qt", "text", logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))))
	t2.AddRule("qt", "text")
	t2.AddRule("q", "b")
	ok, err := Equivalence(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("an unsatisfiable branch cannot separate the views")
	}
}

func TestEquivalenceRejectsRecursive(t *testing.T) {
	if _, err := Equivalence(registrar.Tau1(), registrar.Tau1()); err == nil {
		t.Error("recursive equivalence is undecidable; must be rejected")
	}
}

func TestEquivalenceVirtualCompression(t *testing.T) {
	// t1 spawns b directly; t2 routes the same query through a virtual
	// hop that copies the register. The views are equivalent.
	t1 := pt.New("direct", schemaR(), "q0", "r")
	t1.DeclareTag("b", 1)
	t1.AddRule("q0", "r", pt.Item("q", "b", logic.MustQuery([]logic.Var{x}, nil, logic.R("R1", x))))
	t1.AddRule("q", "b")

	t2 := virtualTransducer(true)
	ok, err := Equivalence(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("virtual hop that copies the register preserves the view")
	}
	// And against the dead variant: not equivalent (t1 emits b's).
	ok, err = Equivalence(t1, virtualTransducer(false))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("dead virtual chain differs from the direct view")
	}
}

// --- Proposition 6(1): UCQ extraction ---------------------------------

func TestOutputUCQMatchesExecution(t *testing.T) {
	// Nonrecursive 2-level CQ view over a graph: a-children for edges
	// from 'a-labeled' sources; b-grandchildren for successors.
	s := relation.NewSchema().MustDeclare("E", 2)
	tr := pt.New("2lvl", s, "q0", "r")
	tr.DeclareTag("a", 2).DeclareTag("b", 1)
	tr.AddRule("q0", "r", pt.Item("q", "a",
		logic.MustQuery([]logic.Var{x, y}, nil, logic.R("E", x, y))))
	z := logic.Var("z")
	step := logic.Ex([]logic.Var{x, y}, logic.Conj(logic.R(pt.RegRel, x, y), logic.R("E", y, z)))
	tr.AddRule("q", "a", pt.Item("qb", "b", logic.MustQuery([]logic.Var{z}, nil, step)))
	tr.AddRule("qb", "b")

	u, err := OutputUCQ(tr, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 1 {
		t.Fatalf("expected one path to b, got %d", len(u))
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		inst := relation.NewInstance(s)
		for k := 0; k < 6; k++ {
			inst.Add("E", string(value.Of(rng.Intn(4))), string(value.Of(rng.Intn(4))))
		}
		fromTr, err := tr.OutputRelation(inst, "b", pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fromUCQ, err := cq.EvalUCQ(u, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTr.Equal(fromUCQ) {
			t.Fatalf("trial %d: transducer %s vs UCQ %s", trial, fromTr, fromUCQ)
		}
	}
}

func TestOutputUCQMultiplePaths(t *testing.T) {
	// Label reached by two different paths → two disjuncts.
	tr := pt.New("2paths", schemaR(), "q0", "r")
	tr.DeclareTag("a", 1).DeclareTag("b", 1).DeclareTag("c", 1)
	qa := logic.MustQuery([]logic.Var{x}, nil, logic.Conj(logic.R("R1", x), logic.EqT(x, logic.Const("1"))))
	qb := logic.MustQuery([]logic.Var{x}, nil, logic.Conj(logic.R("R1", x), logic.NeqT(x, logic.Const("1"))))
	copyQ := logic.MustQuery([]logic.Var{x}, nil, logic.R(pt.RegRel, x))
	tr.AddRule("q0", "r", pt.Item("qa", "a", qa), pt.Item("qb", "b", qb))
	tr.AddRule("qa", "a", pt.Item("qc", "c", copyQ))
	tr.AddRule("qb", "b", pt.Item("qc", "c", copyQ))
	tr.AddRule("qc", "c")

	u, err := OutputUCQ(tr, "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 2 {
		t.Fatalf("expected 2 disjuncts, got %d", len(u))
	}
	inst := relation.NewInstance(schemaR())
	inst.Add("R1", "1")
	inst.Add("R1", "2")
	fromTr, err := tr.OutputRelation(inst, "c", pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromUCQ, err := cq.EvalUCQ(u, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !fromTr.Equal(fromUCQ) || fromTr.Len() != 2 {
		t.Fatalf("transducer %s vs UCQ %s", fromTr, fromUCQ)
	}
}

// --- Proposition 6(2): FO extraction -----------------------------------

func TestOutputFOFormulaMatchesExecution(t *testing.T) {
	// A nonrecursive FO view: courses without DB prerequisite → their
	// cno registers, two levels deep.
	tr := registrar.Tau3()
	f, head, err := OutputFOFormula(tr, "cno")
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range []*relation.Instance{
		registrar.SampleInstance(),
		registrar.ChainInstance(3),
	} {
		fromTr, err := tr.OutputRelation(inst, "cno", pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fromF, err := evalFO(f, head, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !fromTr.Equal(fromF) {
			t.Fatalf("transducer %s vs formula %s", fromTr, fromF)
		}
	}
}

func evalFO(f logic.Formula, head []logic.Var, inst *relation.Instance) (*relation.Relation, error) {
	env := eval.NewEnv(inst)
	q, err := logic.NewQuery(head, nil, f)
	if err != nil {
		return nil, err
	}
	return eval.EvalQuery(q, env)
}
