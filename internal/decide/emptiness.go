// Package decide implements the decidable static analyses of Section 5:
//
//   - emptiness for PT(CQ, S, normal) in PTIME and for PT(CQ, S, virtual)
//     by the NP path-search algorithm (Theorem 1(1));
//   - membership for PT(CQ, tuple, normal) by the small-model search of
//     Theorem 1(2) (Claim 2), with a fast structural refutation pass;
//   - equivalence for PTnr(CQ, tuple, O) by the dependency-graph
//     characterization of Theorem 2(4) (Claim 4);
//   - the UCQ extraction of Proposition 6(1) for nonrecursive
//     tuple-store transducers.
//
// For FO/IFP transducers these problems are undecidable (Proposition 2);
// the corresponding functions reject such inputs with an error, and
// package reduction provides the undecidability constructions.
package decide

import (
	"context"
	"fmt"

	"ptx/internal/cq"
	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/runctl"
)

// ErrUndecidable reports that the requested analysis has no algorithm
// for the transducer's class.
type ErrUndecidable struct {
	Problem string
	Class   pt.Class
}

func (e *ErrUndecidable) Error() string {
	return fmt.Sprintf("decide: %s is undecidable for %s", e.Problem, e.Class)
}

// requireCQ rejects non-CQ transducers for a named problem.
func requireCQ(t *pt.Transducer, problem string) error {
	if cl := t.Classify(); cl.Logic != logic.CQ {
		return &ErrUndecidable{Problem: problem, Class: cl}
	}
	return nil
}

// itemNF normalizes one rule item's query (head = x̄·ȳ).
func itemNF(it pt.RHS) (*cq.NF, error) {
	return cq.Normalize(it.Query.Head(), it.Query.F)
}

// Emptiness decides whether a PT(CQ, S, O) transducer can produce a
// nontrivial tree (one beyond the bare root) on some instance.
//
// Without virtual nodes this is the PTIME test of Theorem 1(1): the
// transducer is nonempty iff some start-rule query is satisfiable (a
// start query referencing the empty root register is vacuous). With
// virtual nodes it is the NP search: a simple path in Gτ from the root
// to a non-virtual tag whose composed query chain is satisfiable.
func Emptiness(t *pt.Transducer) (nonempty bool, err error) {
	return EmptinessContext(context.Background(), t)
}

// EmptinessContext is Emptiness under a context: the NP path search for
// virtual-output transducers polls ctx and returns a typed
// *runctl.ErrCanceled when the deadline expires, so callers get
// "undecided" instead of a hang. Internal panics are contained as
// *runctl.ErrInternal.
func EmptinessContext(ctx context.Context, t *pt.Transducer) (nonempty bool, err error) {
	defer runctl.Recover(&err, "decide.Emptiness")
	if err := requireCQ(t, "emptiness"); err != nil {
		return false, err
	}
	if err := t.Validate(); err != nil {
		return false, err
	}
	if len(t.Virtual) == 0 {
		return emptinessNormal(t)
	}
	return emptinessVirtual(runctl.New(ctx, runctl.Limits{}), t)
}

// emptinessNormal: nontrivial output iff a start query is satisfiable.
func emptinessNormal(t *pt.Transducer) (bool, error) {
	start, _ := t.Rule(t.Start, t.RootTag)
	for _, it := range start.Items {
		nf, err := itemNF(it)
		if err != nil {
			return false, err
		}
		if nf.UsesRel(pt.RegRel) {
			// The root register is the empty nullary relation: any Reg
			// atom is false, the query returns nothing.
			continue
		}
		if nf.Satisfiable() {
			return true, nil
		}
	}
	return false, nil
}

// emptinessVirtual: search simple paths from the root whose last edge
// reaches a non-virtual tag and whose query chain is satisfiable. The
// number of simple paths is exponential in the worst case, so the walk
// polls the controller between paths.
func emptinessVirtual(ctl *runctl.Controller, t *pt.Transducer) (bool, error) {
	g := t.DependencyGraph()
	found := false
	var searchErr error
	g.SimplePaths(func(p *pt.Path) bool {
		// Each path costs a satisfiability check, so poll the context
		// directly rather than through the sampled Tick.
		if err := ctl.Canceled(); err != nil {
			searchErr = err
			return false
		}
		if len(p.Nodes) < 2 {
			return true // root only: trivial tree
		}
		end := p.End()
		if t.Virtual[end.Tag] {
			return true // keep extending
		}
		qs, err := pathQueries(t, p)
		if err != nil {
			searchErr = err
			return false
		}
		if qs == nil {
			return true // chain references the (empty) root register
		}
		ok, err := cq.PathSatisfiable(qs, pt.RegRel)
		if err != nil {
			searchErr = err
			return false
		}
		if ok {
			found = true
			return false
		}
		return true
	})
	return found, searchErr
}

// pathQueries extracts the query chain along a dependency-graph path.
// It returns nil (not an error) when the first query references the
// root register, which is empty by definition.
func pathQueries(t *pt.Transducer, p *pt.Path) ([]*cq.NF, error) {
	qs := make([]*cq.NF, 0, len(p.Items))
	for i, itemIdx := range p.Items {
		from := p.Nodes[i]
		rule, ok := t.Rule(from.State, from.Tag)
		if !ok || itemIdx >= len(rule.Items) {
			return nil, fmt.Errorf("decide: path references missing rule (%s,%s) item %d",
				from.State, from.Tag, itemIdx)
		}
		nf, err := itemNF(rule.Items[itemIdx])
		if err != nil {
			return nil, err
		}
		if i == 0 && nf.UsesRel(pt.RegRel) {
			return nil, nil
		}
		qs = append(qs, nf)
	}
	return qs, nil
}
