package registrar

import (
	"strings"
	"testing"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/xmltree"
)

func TestTau1Chain2(t *testing.T) {
	inst := ChainInstance(2)
	out, err := Tau1().Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.MustParse(
		`db(course(cno(text="CS001"),title(text="Course 1"),prereq(course(cno(text="CS002"),title(text="Course 2"),prereq))),` +
			`course(cno(text="CS002"),title(text="Course 2"),prereq))`)
	if !out.Equal(want) {
		t.Fatalf("tau1 chain(2):\n got  %s\n want %s", out.Canonical(), want.Canonical())
	}
}

func TestTau1DataDrivenDepth(t *testing.T) {
	for n := 1; n <= 6; n++ {
		inst := ChainInstance(n)
		out, err := Tau1().Output(inst, pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// db → course → (prereq → course)^(n-1) → cno → text: each chain
		// level adds a prereq and a course node, so depth is 2n+2.
		wantDepth := 2*n + 2
		if got := out.Depth(); got != wantDepth {
			t.Errorf("chain(%d): depth = %d, want %d", n, got, wantDepth)
		}
	}
}

func TestTau1CycleTerminates(t *testing.T) {
	// A course that (transitively) requires itself: the stop condition
	// must terminate the unfolding (Example 3.1).
	for n := 1; n <= 4; n++ {
		inst := CycleInstance(n)
		res, err := Tau1().Run(inst, pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatalf("cycle(%d): %v", n, err)
		}
		if res.Stats.StopsApplied == 0 {
			t.Errorf("cycle(%d): stop condition never fired", n)
		}
	}
}

func TestTau1SelfLoop(t *testing.T) {
	inst := NewInstance()
	AddCourse(inst, "CS001", "Bootstrap", "CS")
	AddPrereq(inst, "CS001", "CS001")
	out, err := Tau1().Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// db → course → prereq → course → prereq(stopped): exactly two course
	// nodes on the self-loop path.
	if got := out.CountTag("course"); got != 2 {
		t.Fatalf("self-loop: %d course nodes, want 2\n%s", got, out.Canonical())
	}
}

func TestTau2ClosureChain3(t *testing.T) {
	inst := ChainInstance(3)
	out, err := Tau2().Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Depth-three shape: under course CS001, the prereq element lists the
	// whole closure {CS002, CS003}.
	want := xmltree.MustParse(
		`db(` +
			`course(prereq(cno(text="CS002"),cno(text="CS003")),cno(text="CS001"),title(text="Course 1")),` +
			`course(prereq(cno(text="CS003")),cno(text="CS002"),title(text="Course 2")),` +
			`course(prereq,cno(text="CS003"),title(text="Course 3")))`)
	if !out.Equal(want) {
		t.Fatalf("tau2 chain(3):\n got  %s\n want %s", out.Canonical(), want.Canonical())
	}
	// The virtual tag never appears in the output.
	for _, l := range out.Labels() {
		if l == "l" {
			t.Fatal("virtual tag l leaked into output")
		}
	}
}

func TestTau2FixedDepth(t *testing.T) {
	// τ2's output depth is constant (the closure is flattened), no matter
	// how deep the prerequisite hierarchy is.
	for n := 1; n <= 6; n++ {
		out, err := Tau2().Output(ChainInstance(n), pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Depth(); got != 5 && !(n == 1 && got == 4) {
			// db, course, prereq, cno, text = 5 (n=1 has empty prereq).
			t.Errorf("tau2 chain(%d): depth=%d", n, got)
		}
	}
}

func TestTau2OnCycle(t *testing.T) {
	inst := CycleInstance(3)
	out, err := Tau2().Output(inst, pt.Options{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// On a 3-cycle the closure of every course is all three courses.
	first := out.Root.Children[0]
	if first.Tag != "course" {
		t.Fatalf("expected course, got %s", first.Tag)
	}
	prereq := first.Children[0]
	if prereq.Tag != "prereq" {
		t.Fatalf("expected prereq, got %s", prereq.Tag)
	}
	if len(prereq.Children) != 3 {
		t.Fatalf("closure on 3-cycle has %d cnos, want 3:\n%s", len(prereq.Children), out.Canonical())
	}
}

func TestTau3ExcludesDBPrereq(t *testing.T) {
	inst := SampleInstance()
	out, err := Tau3().Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.CountTag("course"); got != 5 {
		t.Fatalf("tau3: %d courses, want 5 (all but CS302)\n%s", got, out.Canonical())
	}
	if strings.Contains(out.Canonical(), "CS302") {
		t.Fatalf("tau3 must exclude CS302:\n%s", out.Canonical())
	}
	if out.Depth() != 4 { // db, course, cno/title, text
		t.Fatalf("tau3 depth = %d, want 4", out.Depth())
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		tr   *pt.Transducer
		want string
	}{
		{Tau1(), "PT(CQ, tuple, normal)"},
		{Tau2(), "PT(FO, relation, virtual)"},
		{Tau3(), "PTnr(FO, tuple, normal)"},
	}
	for _, c := range cases {
		if got := c.tr.Classify().String(); got != c.want {
			t.Errorf("%s: classified as %s, want %s", c.tr.Name, got, c.want)
		}
	}
}

func TestClassInclusionOrder(t *testing.T) {
	small := pt.Class{Logic: logic.CQ, Store: pt.TupleStore, Output: pt.NormalOutput}
	big := pt.Class{Logic: logic.IFP, Store: pt.RelationStore, Output: pt.VirtualOutput, Recursive: true}
	if !small.Within(big) {
		t.Error("PTnr(CQ,tuple,normal) should be within PT(IFP,relation,virtual)")
	}
	if big.Within(small) {
		t.Error("PT(IFP,relation,virtual) should not be within PTnr(CQ,tuple,normal)")
	}
}

func TestValidateAll(t *testing.T) {
	for _, tr := range []*pt.Transducer{Tau1(), Tau2(), Tau3()} {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	inst := SampleInstance()
	tr := Tau1()
	first, err := tr.Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := tr.Output(inst, pt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !first.Equal(again) {
			t.Fatalf("run %d differs from first run", i)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	inst := DiamondInstance(5)
	tr := Tau1()
	seq, err := tr.Output(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := tr.Output(inst, pt.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(par) {
		t.Fatal("parallel run produced a different tree")
	}
}

func TestOutputRelation(t *testing.T) {
	// Treat τ1 as a relational query with output label course: the union
	// of all course registers is every CS course reachable through some
	// prerequisite chain from a CS course — here simply all CS courses.
	inst := ChainInstance(3)
	rel, err := Tau1().OutputRelation(inst, "course", pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("output relation has %d tuples, want 3: %s", rel.Len(), rel)
	}
}

func TestBudgetEnforced(t *testing.T) {
	inst := DiamondInstance(8)
	_, err := Tau1().Run(inst, pt.Options{MaxNodes: 50})
	if err == nil {
		t.Fatal("expected budget error")
	}
	if _, ok := err.(*pt.ErrBudget); !ok {
		t.Fatalf("expected *pt.ErrBudget, got %T: %v", err, err)
	}
}

// TestTau1Tau2Consistency: τ2's flattened prereq closure under a course
// equals the set of course numbers occurring anywhere in τ1's unfolded
// prereq subtree of that course — the two views present the same
// information at different depths (Example 3.2's point).
func TestTau1Tau2Consistency(t *testing.T) {
	for _, inst := range []*relationInstance{
		{SampleInstance()}, {ChainInstance(4)}, {CycleInstance(3)},
	} {
		o1, err := Tau1().Output(inst.i, pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		o2, err := Tau2().Output(inst.i, pt.Options{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		c1 := topCourses(o1)
		c2 := topCourses(o2)
		if len(c1) != len(c2) {
			t.Fatalf("course counts differ: %d vs %d", len(c1), len(c2))
		}
		for cno, node1 := range c1 {
			node2, ok := c2[cno]
			if !ok {
				t.Fatalf("course %s missing from τ2", cno)
			}
			// τ1: all cno values strictly below the course's prereq child.
			want := map[string]bool{}
			collectCnos(prereqChild(node1), want)
			delete(want, cno) // a cyclic course lists itself in τ1's subtree stop node
			// τ2: the direct cno children of the prereq element.
			got := map[string]bool{}
			for _, c := range prereqChild(node2).Children {
				if c.Tag == "cno" {
					got[c.Children[0].Text] = true
				}
			}
			delete(got, cno)
			if len(want) != len(got) {
				t.Fatalf("course %s: τ1 closure %v vs τ2 closure %v", cno, want, got)
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("course %s: %s in τ1 subtree but not τ2 closure", cno, k)
				}
			}
		}
	}
}

type relationInstance struct{ i *relation.Instance }

func topCourses(tree *xmltree.Tree) map[string]*xmltree.Node {
	out := map[string]*xmltree.Node{}
	for _, c := range tree.Root.Children {
		if c.Tag == "course" {
			out[cnoOf(c)] = c
		}
	}
	return out
}

func cnoOf(course *xmltree.Node) string {
	for _, c := range course.Children {
		if c.Tag == "cno" {
			return c.Children[0].Text
		}
	}
	return ""
}

func prereqChild(course *xmltree.Node) *xmltree.Node {
	for _, c := range course.Children {
		if c.Tag == "prereq" {
			return c
		}
	}
	return &xmltree.Node{}
}

// collectCnos gathers the cno text values in a subtree.
func collectCnos(n *xmltree.Node, out map[string]bool) {
	if n == nil {
		return
	}
	if n.Tag == "cno" && len(n.Children) == 1 {
		out[n.Children[0].Text] = true
	}
	for _, c := range n.Children {
		collectCnos(c, out)
	}
}
