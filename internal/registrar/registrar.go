// Package registrar implements the paper's running example: the
// registrar database R0 with relations course(cno, title, dept) and
// prereq(cno1, cno2), instance generators for prerequisite hierarchies,
// and the three XML views of Figure 1 as publishing transducers:
//
//   - τ1 (Example 3.1): the recursive prerequisite hierarchy of every
//     CS course — PT(CQ, tuple, normal);
//   - τ2 (Example 3.2): the depth-three view collecting the entire
//     prerequisite closure under each course using a virtual tag and an
//     FO fixpoint test — PT(FO, relation, virtual);
//   - τ3 (Fig. 1(c)): the depth-two view of courses that do not have DB
//     as an immediate prerequisite — PTnr(FO, tuple, normal).
package registrar

import (
	"fmt"

	"ptx/internal/logic"
	"ptx/internal/pt"
	"ptx/internal/relation"
)

// Schema returns the registrar schema R0.
func Schema() *relation.Schema {
	s := relation.NewSchema()
	s.MustDeclare("course", 3)
	s.MustDeclare("prereq", 2)
	return s
}

// NewInstance returns an empty registrar instance.
func NewInstance() *relation.Instance { return relation.NewInstance(Schema()) }

// AddCourse inserts a course tuple.
func AddCourse(i *relation.Instance, cno, title, dept string) {
	i.Add("course", cno, title, dept)
}

// AddPrereq records that c2 is an immediate prerequisite of c1.
func AddPrereq(i *relation.Instance, c1, c2 string) {
	i.Add("prereq", c1, c2)
}

// ChainInstance builds n CS courses c1,…,cn where c(i+1) is the
// immediate prerequisite of ci — a linear prerequisite hierarchy of
// depth n.
func ChainInstance(n int) *relation.Instance {
	inst := NewInstance()
	for i := 1; i <= n; i++ {
		AddCourse(inst, courseNo(i), fmt.Sprintf("Course %d", i), "CS")
		if i < n {
			AddPrereq(inst, courseNo(i), courseNo(i+1))
		}
	}
	return inst
}

// CycleInstance builds n CS courses forming a prerequisite cycle
// c1→c2→…→cn→c1; the stop condition of the transducer is what makes
// τ1 terminate on it.
func CycleInstance(n int) *relation.Instance {
	inst := ChainInstance(n)
	AddPrereq(inst, courseNo(n), courseNo(1))
	return inst
}

// DiamondInstance builds the "chain of diamonds" prerequisite graph of
// Proposition 1(3) over courses: course a_k has two prerequisites
// b_k1, b_k2, both of which require a_(k+1). Unfolding it as a tree
// (which τ1 does) yields 2^n leaves from an O(n)-size instance.
func DiamondInstance(n int) *relation.Instance {
	inst := NewInstance()
	a := func(k int) string { return fmt.Sprintf("A%03d", k) }
	b := func(k, j int) string { return fmt.Sprintf("B%03d%d", k, j) }
	for k := 0; k <= n; k++ {
		AddCourse(inst, a(k), fmt.Sprintf("Hub %d", k), "CS")
		if k == n {
			break
		}
		for j := 1; j <= 2; j++ {
			AddCourse(inst, b(k, j), fmt.Sprintf("Branch %d.%d", k, j), "CS")
			AddPrereq(inst, a(k), b(k, j))
			AddPrereq(inst, b(k, j), a(k+1))
		}
	}
	return inst
}

// SampleInstance is the small illustrative instance used by examples and
// documentation: CS401 requires CS301 and CS302, both of which require
// CS201; MA101 is a non-CS course; DB100 is titled DB and is an
// immediate prerequisite of CS302.
func SampleInstance() *relation.Instance {
	inst := NewInstance()
	AddCourse(inst, "CS401", "Compilers", "CS")
	AddCourse(inst, "CS301", "Algorithms", "CS")
	AddCourse(inst, "CS302", "Databases II", "CS")
	AddCourse(inst, "CS201", "Data Structures", "CS")
	AddCourse(inst, "DB100", "DB", "CS")
	AddCourse(inst, "MA101", "Calculus", "Math")
	AddPrereq(inst, "CS401", "CS301")
	AddPrereq(inst, "CS401", "CS302")
	AddPrereq(inst, "CS301", "CS201")
	AddPrereq(inst, "CS302", "CS201")
	AddPrereq(inst, "CS302", "DB100")
	return inst
}

func courseNo(i int) string { return fmt.Sprintf("CS%03d", i) }

var (
	vCno   = logic.Var("cno")
	vTitle = logic.Var("title")
	vDept  = logic.Var("dept")
	vC     = logic.Var("c")
	vC2    = logic.Var("c2")
	vT     = logic.Var("t")
	vD     = logic.Var("d")
)

// phiCSCourses is φ1 of Example 3.1: the CS courses with cno and title.
func phiCSCourses() *logic.Query {
	f := logic.Ex([]logic.Var{vDept}, logic.Conj(
		logic.R("course", vCno, vTitle, vDept),
		logic.EqT(vDept, logic.Const("CS")),
	))
	return logic.MustQuery([]logic.Var{vCno, vTitle}, nil, f)
}

// Tau1 builds the transducer τ1 of Example 3.1 — the recursive
// prerequisite-hierarchy view of Fig. 1(a).
func Tau1() *pt.Transducer {
	t := pt.New("tau1", Schema(), "q0", "db")
	t.DeclareTag("course", 2).
		DeclareTag("prereq", 1).
		DeclareTag("cno", 1).
		DeclareTag("title", 1).
		DeclareTag("text", 1)

	// δ1(q0, db) = (q, course, φ1(cno,title;∅))
	t.AddRule("q0", "db", pt.Item("q", "course", phiCSCourses()))

	// δ1(q, course) = (q, cno, φ(cno;∅)), (q, title, φ(title;∅)),
	//                 (q, prereq, φ(cno;∅))
	cnoOfReg := logic.MustQuery([]logic.Var{vCno}, nil,
		logic.Ex([]logic.Var{vTitle}, logic.R(pt.RegRel, vCno, vTitle)))
	titleOfReg := logic.MustQuery([]logic.Var{vTitle}, nil,
		logic.Ex([]logic.Var{vCno}, logic.R(pt.RegRel, vCno, vTitle)))
	t.AddRule("q", "course",
		pt.Item("q", "cno", cnoOfReg),
		pt.Item("q", "title", titleOfReg),
		pt.Item("q", "prereq", cnoOfReg),
	)

	// δ1(q, prereq) = (q, course, φ3(c,t;∅)) with
	// φ3(c,t) = ∃c',d (Reg(c') ∧ prereq(c',c) ∧ course(c,t,d))
	phi3 := logic.MustQuery([]logic.Var{vC, vT}, nil,
		logic.Ex([]logic.Var{vC2, vD}, logic.Conj(
			logic.R(pt.RegRel, vC2),
			logic.R("prereq", vC2, vC),
			logic.R("course", vC, vT, vD),
		)))
	t.AddRule("q", "prereq", pt.Item("q", "course", phi3))

	// δ1(q, cno) = (q, text, Reg(c)); similarly for title.
	textOfReg := logic.MustQuery([]logic.Var{vC}, nil, logic.R(pt.RegRel, vC))
	t.AddRule("q", "cno", pt.Item("q", "text", textOfReg))
	t.AddRule("q", "title", pt.Item("q", "text", textOfReg))
	t.AddRule("q", "text")
	return t
}

// Tau2 builds the transducer τ2 of Example 3.2 — the depth-three
// prerequisite-closure view of Fig. 1(b), using the virtual tag l.
func Tau2() *pt.Transducer {
	t := pt.New("tau2", Schema(), "q0", "db")
	t.DeclareTag("course", 2).
		DeclareTag("prereq", 1).
		DeclareTag("l", 1).
		DeclareTag("cno", 1).
		DeclareTag("title", 1).
		DeclareTag("text", 1)
	t.MarkVirtual("l")

	t.AddRule("q0", "db", pt.Item("q", "course", phiCSCourses()))

	cnoOfReg := logic.MustQuery([]logic.Var{vCno}, nil,
		logic.Ex([]logic.Var{vTitle}, logic.R(pt.RegRel, vCno, vTitle)))
	titleOfReg := logic.MustQuery([]logic.Var{vTitle}, nil,
		logic.Ex([]logic.Var{vCno}, logic.R(pt.RegRel, vCno, vTitle)))
	t.AddRule("q", "course",
		pt.Item("q", "prereq", cnoOfReg),
		pt.Item("q", "cno", cnoOfReg),
		pt.Item("q", "title", titleOfReg),
	)

	// δ2(q, prereq) = (q, l, ϕ1(∅;c)) with
	// ϕ1(c) = ∃c' (Reg(c') ∧ prereq(c',c))
	phi1 := logic.MustQuery(nil, []logic.Var{vC},
		logic.Ex([]logic.Var{vC2}, logic.Conj(
			logic.R(pt.RegRel, vC2),
			logic.R("prereq", vC2, vC),
		)))
	t.AddRule("q", "prereq", pt.Item("q", "l", phi1))

	// ϕ'1(c) = Reg(c) ∨ ∃c' (Reg(c') ∧ prereq(c',c)) — one closure step.
	phi1p := func(c logic.Var) logic.Formula {
		return logic.Disj(
			logic.R(pt.RegRel, c),
			logic.Ex([]logic.Var{vC2}, logic.Conj(
				logic.R(pt.RegRel, vC2),
				logic.R("prereq", vC2, c),
			)),
		)
	}
	// ϕ2(c) = ϕ'1(c) ∧ ∀c3 (Reg(c3) ↔ ϕ'1(c3)) — emit cno's only at the
	// fixpoint.
	vC3 := logic.Var("c3")
	iff := func(a, b logic.Formula) logic.Formula {
		return logic.Conj(
			logic.Disj(&logic.Not{F: a}, b),
			logic.Disj(&logic.Not{F: b}, a),
		)
	}
	phi2 := logic.Conj(
		phi1p(vC),
		logic.All([]logic.Var{vC3}, iff(logic.R(pt.RegRel, vC3), phi1pAt(vC3))),
	)
	t.AddRule("q", "l",
		pt.Item("q", "l", logic.MustQuery(nil, []logic.Var{vC}, phi1p(vC))),
		pt.Item("q", "cno", logic.MustQuery([]logic.Var{vC}, nil, phi2)),
	)

	textOfReg := logic.MustQuery([]logic.Var{vC}, nil, logic.R(pt.RegRel, vC))
	t.AddRule("q", "cno", pt.Item("q", "text", textOfReg))
	t.AddRule("q", "title", pt.Item("q", "text", textOfReg))
	t.AddRule("q", "text")
	return t
}

// phi1pAt instantiates ϕ'1 at the given variable with fresh bound names
// to avoid capture inside the ∀ of ϕ2.
func phi1pAt(c logic.Var) logic.Formula {
	fresh := logic.Var("c4")
	return logic.Disj(
		logic.R(pt.RegRel, c),
		logic.Ex([]logic.Var{fresh}, logic.Conj(
			logic.R(pt.RegRel, fresh),
			logic.R("prereq", fresh, c),
		)),
	)
}

// Tau3 builds the transducer for the view of Fig. 1(c): the depth-two
// list of courses that do not have a course titled DB as an immediate
// prerequisite (the FOR XML example of Fig. 2).
func Tau3() *pt.Transducer {
	t := pt.New("tau3", Schema(), "q0", "db")
	t.DeclareTag("course", 2).
		DeclareTag("cno", 1).
		DeclareTag("title", 1).
		DeclareTag("text", 1)

	vT2 := logic.Var("t2")
	vD2 := logic.Var("d2")
	noDBPrereq := logic.Conj(
		logic.Ex([]logic.Var{vDept}, logic.R("course", vCno, vTitle, vDept)),
		&logic.Not{F: logic.Ex([]logic.Var{vC2, vT2, vD2}, logic.Conj(
			logic.R("prereq", vCno, vC2),
			logic.R("course", vC2, vT2, vD2),
			logic.EqT(vT2, logic.Const("DB")),
		))},
	)
	t.AddRule("q0", "db",
		pt.Item("q", "course", logic.MustQuery([]logic.Var{vCno, vTitle}, nil, noDBPrereq)))

	cnoOfReg := logic.MustQuery([]logic.Var{vCno}, nil,
		logic.Ex([]logic.Var{vTitle}, logic.R(pt.RegRel, vCno, vTitle)))
	titleOfReg := logic.MustQuery([]logic.Var{vTitle}, nil,
		logic.Ex([]logic.Var{vCno}, logic.R(pt.RegRel, vCno, vTitle)))
	t.AddRule("q", "course",
		pt.Item("q", "cno", cnoOfReg),
		pt.Item("q", "title", titleOfReg),
	)
	textOfReg := logic.MustQuery([]logic.Var{vC}, nil, logic.R(pt.RegRel, vC))
	t.AddRule("q", "cno", pt.Item("q", "text", textOfReg))
	t.AddRule("q", "title", pt.Item("q", "text", textOfReg))
	t.AddRule("q", "text")
	return t
}
