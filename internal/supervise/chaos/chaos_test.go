package chaos_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"ptx/internal/supervise/chaos"
	"ptx/internal/testutil"
)

// chaosSeeds is the acceptance-criterion batch size: at least 100
// seeded fault plans, every one terminating in success or a typed
// error with zero goroutine leaks.
const chaosSeeds = 120

// dumpArtifact writes the failing case's checkpoint and description to
// CHAOS_ARTIFACT_DIR (set by the CI job) so the scenario ships with the
// failure report and replays from its seed.
func dumpArtifact(t *testing.T, out *chaos.Outcome, violation error) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" || out == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	desc := fmt.Sprintf("seed=%d workload=%s case=%+v\nviolation=%v\nterminal=%v\nattempts=%d ops=%d\n",
		out.Case.Seed, out.Case.Workload, out.Case, violation, out.Err, out.Attempts, out.Ops)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("case-%d.txt", out.Case.Seed)), []byte(desc), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
	if out.Snapshot != nil {
		var buf bytes.Buffer
		if err := out.Snapshot.Encode(&buf); err == nil {
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("case-%d.checkpoint", out.Case.Seed)), buf.Bytes(), 0o644); err != nil {
				t.Logf("artifact write: %v", err)
			}
		}
	}
}

// TestChaosBatch runs the full seeded batch and enforces the three
// invariants (termination with typed errors, golden-equal output on
// success, no goroutine leaks).
func TestChaosBatch(t *testing.T) {
	workloads := chaos.Workloads()
	base := runtime.NumGoroutine()
	succeeded, failedTyped := 0, 0
	for seed := int64(1); seed <= chaosSeeds; seed++ {
		c := chaos.NewCase(seed, workloads)
		out, violation := chaos.Execute(context.Background(), c)
		if violation != nil {
			dumpArtifact(t, out, violation)
			t.Errorf("seed %d: %v", seed, violation)
			continue
		}
		if out.Success {
			succeeded++
		} else {
			failedTyped++
		}
	}
	testutil.SettledGoroutines(t, base)
	t.Logf("chaos batch: %d succeeded, %d ended in typed errors", succeeded, failedTyped)
	// The probabilities in NewCase are tuned so both terminal states
	// actually occur; a batch that never exercises one of them has lost
	// its coverage.
	if succeeded == 0 {
		t.Error("no chaos case succeeded; fault rates are too hot to test recovery")
	}
	if failedTyped == 0 {
		t.Error("no chaos case exhausted its retries; fault rates too cold to test typed failure")
	}
}

// TestChaosDeterministic: the same seed must produce the same terminal
// state and attempt count — the property that makes failures replayable.
func TestChaosDeterministic(t *testing.T) {
	workloads := chaos.Workloads()
	for seed := int64(1); seed <= 10; seed++ {
		a, errA := chaos.Execute(context.Background(), chaos.NewCase(seed, workloads))
		b, errB := chaos.Execute(context.Background(), chaos.NewCase(seed, workloads))
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: violations %v / %v", seed, errA, errB)
		}
		if a.Success != b.Success || a.Attempts != b.Attempts || a.Ops != b.Ops {
			t.Errorf("seed %d not deterministic: (%v,%d,%d) vs (%v,%d,%d)",
				seed, a.Success, a.Attempts, a.Ops, b.Success, b.Attempts, b.Ops)
		}
		if (a.Err == nil) != (b.Err == nil) {
			t.Errorf("seed %d: terminal errors disagree: %v vs %v", seed, a.Err, b.Err)
		}
	}
}

// TestChaosCaseStable pins the seed→case mapping: if NewCase's drawing
// order changes, recorded seeds in CI failures would replay different
// scenarios, so a change here must be deliberate.
func TestChaosCaseStable(t *testing.T) {
	workloads := chaos.Workloads()
	a := chaos.NewCase(7, workloads)
	b := chaos.NewCase(7, workloads)
	if a.Workload != b.Workload || a.Cache != b.Cache || a.Retries != b.Retries ||
		a.CheckpointEvery != b.CheckpointEvery || a.EncodeHop != b.EncodeHop ||
		len(a.Probs) != len(b.Probs) || a.Limits != b.Limits {
		t.Fatalf("NewCase not deterministic: %+v vs %+v", a, b)
	}
	for op, p := range a.Probs {
		if b.Probs[op] != p {
			t.Fatalf("NewCase probs differ for %s", op)
		}
	}
}
