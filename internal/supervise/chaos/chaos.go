// Package chaos is the randomized-but-reproducible fault harness for
// the supervision layer. One integer seed determines an entire
// scenario — which workload runs, which operations fail with which
// probabilities, what budgets apply, how many retries are allowed — so
// any failing case replays exactly from its seed.
//
// Every executed case must satisfy the robustness invariants the ISSUE
// pins:
//
//  1. the run TERMINATES, in success or in a typed runctl error —
//     never a bare error, never a hang, never a panic;
//  2. on success the output is byte-identical to the fault-free,
//     limit-free golden run (determinism survives arbitrary
//     interrupt/retry/resume schedules);
//  3. no goroutines leak (asserted by the test driver around batches).
//
// Fault injection covers query evaluation, node materialization and
// formula evaluation through runctl.FaultPlan, and the serialization
// path through a faulty io.Writer wrapper that participates in the same
// plan (runctl.OpSerialize).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"ptx/internal/families"
	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/supervise"
)

// Workload pairs a transducer with an instance it runs on.
type Workload struct {
	Name string
	Tr   *pt.Transducer
	Inst *relation.Instance
}

// Workloads returns the chaos corpus: the registrar example views plus
// the Proposition 1 blowup families at tame sizes.
func Workloads() []Workload {
	pc := relation.NewInstance(families.PathCountSchema())
	pc.Add("S", "s")
	pc.Add("T", "t")
	pc.Add("R", "s", "m1")
	pc.Add("R", "s", "m2")
	pc.Add("R", "m1", "t")
	pc.Add("R", "m2", "t")
	return []Workload{
		{"tau1/sample", registrar.Tau1(), registrar.SampleInstance()},
		{"tau3/sample", registrar.Tau3(), registrar.SampleInstance()},
		{"unfold/d4", families.UnfoldTransducer(), families.DiamondChain(4)},
		{"unfold/d6", families.UnfoldTransducer(), families.DiamondChain(6)},
		{"counter/n1", families.CounterTransducer(), families.CounterInstance(1)},
		{"counter/n2", families.CounterTransducer(), families.CounterInstance(2)},
		{"pathcount", families.PathCountTransducer(), pc},
	}
}

// Case is one fully-determined chaos scenario.
type Case struct {
	Seed     int64
	Workload string
	Probs    map[runctl.Op]float64
	Limits   runctl.Limits
	Cache    pt.CacheMode
	Retries  int
	// CheckpointEvery > 0 takes periodic snapshots mid-run, exercising
	// the deep-copy capture path under faults.
	CheckpointEvery int64
	// EncodeHop routes recovery through the full snapshot
	// Encode/Decode/Verify path between attempts instead of resuming
	// in memory.
	EncodeHop bool
}

// NewCase derives a scenario from a seed. Fault probabilities are kept
// small enough that most cases can succeed within their retry budget,
// and every parameter draw comes from the seeded PRNG only, so the
// mapping seed→case is stable across runs and platforms.
func NewCase(seed int64, workloads []Workload) Case {
	rng := rand.New(rand.NewSource(seed))
	c := Case{
		Seed:     seed,
		Workload: workloads[rng.Intn(len(workloads))].Name,
		Probs:    map[runctl.Op]float64{},
		Cache:    pt.CacheMode(rng.Intn(3)),
		Retries:  4 + rng.Intn(8),
	}
	for _, op := range runctl.Ops() {
		if rng.Float64() < 0.5 {
			c.Probs[op] = 0.002 * float64(1+rng.Intn(10))
		}
	}
	switch rng.Intn(4) {
	case 0:
		c.Limits.MaxQueries = 20 + rng.Intn(200)
	case 1:
		c.Limits.MaxNodes = 20 + rng.Intn(200)
	}
	if rng.Intn(4) == 0 {
		c.CheckpointEvery = int64(1 + rng.Intn(20))
	}
	c.EncodeHop = rng.Intn(2) == 0
	return c
}

// Outcome reports what a case did.
type Outcome struct {
	Case     Case
	Success  bool
	Err      error // terminal error (typed), nil on success
	Attempts int
	Ops      int64
	// Snapshot is the last checkpoint the supervision loop captured,
	// for artifact upload on invariant violations.
	Snapshot *supervise.Snapshot
}

// golden caches the fault-free, limit-free canonical output per
// workload; it is the oracle every successful chaos run must match.
var golden sync.Map // workload name -> string

func goldenFor(w Workload) (string, error) {
	if s, ok := golden.Load(w.Name); ok {
		return s.(string), nil
	}
	res, err := w.Tr.Run(w.Inst, pt.Options{})
	if err != nil {
		return "", fmt.Errorf("golden run for %s: %w", w.Name, err)
	}
	var sb strings.Builder
	if err := res.Xi.WriteCanonicalVirtual(&sb, w.Tr.Virtual); err != nil {
		return "", fmt.Errorf("golden serialize for %s: %w", w.Name, err)
	}
	golden.Store(w.Name, sb.String())
	return sb.String(), nil
}

// typed reports whether err is one of the runctl error types (or
// transient-wrapped); bare errors violate invariant 1.
func typed(err error) bool {
	var (
		budget   *runctl.ErrBudget
		canceled *runctl.ErrCanceled
		internal *runctl.ErrInternal
	)
	return runctl.IsTransient(err) ||
		errors.As(err, &budget) || errors.As(err, &canceled) || errors.As(err, &internal)
}

// faultyWriter participates in the case's fault plan on the
// serialization path: every Write is one OpSerialize operation.
type faultyWriter struct {
	w    io.Writer
	plan *runctl.FaultPlan
}

func (f *faultyWriter) Write(p []byte) (int, error) {
	if err := f.plan.Check(runctl.OpSerialize); err != nil {
		return 0, err
	}
	return f.w.Write(p)
}

// Execute runs one case and checks the terminal-state invariants. The
// returned error is non-nil ONLY for an invariant violation; expected
// failures (typed errors after exhausted retries) are reported in the
// Outcome with a nil error.
func Execute(ctx context.Context, c Case) (*Outcome, error) {
	var w Workload
	for _, cand := range Workloads() {
		if cand.Name == c.Workload {
			w = cand
			break
		}
	}
	if w.Tr == nil {
		return nil, fmt.Errorf("case %d names unknown workload %q", c.Seed, c.Workload)
	}
	want, err := goldenFor(w)
	if err != nil {
		return nil, err
	}

	plan := runctl.SeededPlan(c.Seed, runctl.Transient(fmt.Errorf("chaos fault (seed %d)", c.Seed)), c.Probs)
	out := &Outcome{Case: c}

	opts := supervise.Options{
		Run: pt.Options{
			Cache:  c.Cache,
			Limits: &c.Limits,
			Faults: plan,
		},
		Retries:         c.Retries,
		Checkpoint:      true,
		CheckpointEvery: c.CheckpointEvery,
		Sleep:           func(time.Duration) {}, // schedules are deterministic; never actually wait
	}

	res, rep, runErr := runCase(ctx, w, opts, c)
	out.Attempts, out.Ops, out.Snapshot = rep.Attempts, rep.Ops, rep.Snapshot
	if runErr != nil {
		out.Err = runErr
		if !typed(runErr) {
			return out, fmt.Errorf("case %d (%s): terminal error is not runctl-typed: %v", c.Seed, c.Workload, runErr)
		}
		return out, nil
	}

	// Serialization under OpSerialize faults: transient write errors are
	// retried like any other transient failure; determinism means a
	// re-serialization of the same tree is byte-identical.
	var text string
	serErr := errors.New("unreached")
	for attempt := 0; attempt <= c.Retries && serErr != nil; attempt++ {
		var sb strings.Builder
		serErr = res.Xi.WriteCanonicalVirtual(&faultyWriter{w: &sb, plan: plan}, w.Tr.Virtual)
		if serErr == nil {
			text = sb.String()
		}
	}
	if serErr != nil {
		out.Err = serErr
		if !typed(serErr) {
			return out, fmt.Errorf("case %d (%s): serialize error is not typed: %v", c.Seed, c.Workload, serErr)
		}
		return out, nil
	}

	out.Success = true
	if text != want {
		return out, fmt.Errorf("case %d (%s): successful run's output differs from golden (%d vs %d bytes)",
			c.Seed, c.Workload, len(text), len(want))
	}
	return out, nil
}

// runCase drives the supervision loop, optionally hopping through the
// serialized snapshot format between attempts.
func runCase(ctx context.Context, w Workload, opts supervise.Options, c Case) (*pt.Result, *supervise.Report, error) {
	if !c.EncodeHop {
		return supervise.Run(ctx, w.Tr, w.Inst, opts)
	}
	// Encode-hop mode: let the loop fail one attempt at a time
	// (Retries=0), round-trip the failure checkpoint through the text
	// format, and resume from the decoded snapshot — the cross-process
	// recovery story, compressed into one process.
	single := opts
	single.Retries = 0
	res, rep, err := supervise.Run(ctx, w.Tr, w.Inst, single)
	total := &supervise.Report{Attempts: rep.Attempts, Ops: rep.Ops, Errs: rep.Errs, Snapshot: rep.Snapshot, FinalOptions: rep.FinalOptions}
	for attempt := 1; err != nil && attempt <= c.Retries && supervise.Retryable(err) && rep.Snapshot != nil; attempt++ {
		var buf strings.Builder
		if encErr := rep.Snapshot.Encode(&buf); encErr != nil {
			return nil, total, fmt.Errorf("chaos: encoding checkpoint: %w", encErr)
		}
		snap, decErr := supervise.DecodeSnapshot(strings.NewReader(buf.String()))
		if decErr != nil {
			return nil, total, fmt.Errorf("chaos: decoding checkpoint: %w", decErr)
		}
		res, rep, err = supervise.Resume(ctx, w.Tr, w.Inst, snap, single)
		total.Attempts += rep.Attempts
		total.Ops += rep.Ops
		total.Errs = append(total.Errs, rep.Errs...)
		if rep.Snapshot != nil {
			total.Snapshot = rep.Snapshot
		}
	}
	return res, total, err
}
