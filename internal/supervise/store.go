// CheckpointStore is the distributed-handoff side of checkpointing: a
// shared place where one node's interrupted run can be picked up by
// another. The store is keyed by an opaque run key (the coordinator
// derives it from the request) and every write carries an OWNERSHIP
// EPOCH — a monotonically increasing integer the cluster coordinator
// bumps whenever a key's owner changes. A write whose epoch is lower
// than the stored entry's is rejected with *ErrFenced: a node that
// kept running after losing ownership (a "zombie" — drained,
// partitioned, or presumed dead) cannot clobber the progress its
// successor has already made. This is the classic fencing-token
// discipline; the filesystem implementation below is the shared-dir
// deployment (NFS volume, k8s PVC), and the interface leaves room for
// an object-store or kv-backed one.
package supervise

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// CheckpointStore persists run checkpoints under opaque keys with
// ownership-epoch fencing. Implementations must be safe for concurrent
// use by multiple goroutines and (for shared-backend implementations)
// multiple processes.
type CheckpointStore interface {
	// Save persists snap under key. It fails with *ErrFenced when the
	// store already holds an entry for key written at a HIGHER epoch —
	// the caller has lost ownership and must stop working on the run.
	// Same-epoch writes overwrite (one owner making forward progress).
	Save(key string, epoch uint64, snap *Snapshot) error

	// Load returns the stored snapshot and the epoch it was written at,
	// or (nil, 0, nil) when no entry exists. A stored entry that fails
	// to decode is surfaced as the codec's typed error (*SnapshotError
	// wrapped) — callers treat it as "no usable checkpoint", never as
	// something to resume from.
	Load(key string) (*Snapshot, uint64, error)

	// Delete removes the entry for key (a completed run's checkpoint).
	// Deleting an absent key is not an error.
	Delete(key string) error
}

// ErrFenced reports a checkpoint write rejected by the ownership fence:
// the store holds an entry written at a higher epoch, meaning another
// node now owns the run. The holder should abandon the run — its result
// would be discarded anyway.
type ErrFenced struct {
	Key    string
	Epoch  uint64 // the rejected write's epoch
	Stored uint64 // the epoch already in the store
}

func (e *ErrFenced) Error() string {
	return fmt.Sprintf("supervise: checkpoint write fenced: key %.12s… epoch %d is stale (store has epoch %d)",
		e.Key, e.Epoch, e.Stored)
}

// DirStore is the filesystem CheckpointStore: one file per key in a
// shared directory, each holding an epoch header line followed by the
// versioned snapshot encoding. Writes go through a temp file and an
// atomic rename; the read-compare-write of the fencing check is
// serialized by a per-key lock file (O_CREATE|O_EXCL), which works on
// the shared filesystems this store targets.
type DirStore struct {
	dir string

	// mu serializes same-process access per key so in-process callers
	// never contend on the lock file against themselves.
	mu sync.Mutex

	// LockTimeout bounds how long Save/Delete waits for a key's lock
	// file before treating it as stale and breaking it (a crashed
	// holder cannot release). Default 2s.
	LockTimeout time.Duration
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("supervise: checkpoint store: %w", err)
	}
	return &DirStore{dir: dir, LockTimeout: 2 * time.Second}, nil
}

// path maps an opaque key to a filename: keys are hashed, so any byte
// sequence is a valid key and no key can escape the store directory.
func (d *DirStore) path(key string) string {
	h := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(h[:16])+".ckpt")
}

// lock acquires the cross-process lock file for path, polling until
// LockTimeout and then breaking the (presumed stale) lock.
func (d *DirStore) lock(path string) (release func(), err error) {
	lockPath := path + ".lock"
	deadline := time.Now().Add(d.LockTimeout)
	for {
		f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(lockPath) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("supervise: checkpoint lock: %w", err)
		}
		if time.Now().After(deadline) {
			// The holder is gone (crashed mid-save); break the lock. The
			// epoch check below still protects against its stale write
			// racing ours, and the rename keeps the file atomic.
			os.Remove(lockPath)
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// storedEpoch reads just the epoch header of an existing entry;
// (0, false) when the file does not exist or is unreadable.
func (d *DirStore) storedEpoch(path string) (uint64, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	line, err := bufio.NewReader(f).ReadString('\n')
	if err != nil {
		return 0, false
	}
	epoch, ok := parseEpochHeader(strings.TrimSuffix(line, "\n"))
	return epoch, ok
}

func parseEpochHeader(line string) (uint64, bool) {
	const prefix = "epoch "
	if !strings.HasPrefix(line, prefix) {
		return 0, false
	}
	epoch, err := strconv.ParseUint(line[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return epoch, true
}

// Save implements CheckpointStore with the fencing check under the
// key's lock: read the stored epoch, reject stale writers, then write
// temp + rename so readers never observe a torn file.
func (d *DirStore) Save(key string, epoch uint64, snap *Snapshot) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	path := d.path(key)
	release, err := d.lock(path)
	if err != nil {
		return err
	}
	defer release()

	if stored, ok := d.storedEpoch(path); ok && stored > epoch {
		return &ErrFenced{Key: key, Epoch: epoch, Stored: stored}
	}
	tmp, err := os.CreateTemp(d.dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("supervise: checkpoint save: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := fmt.Fprintf(tmp, "epoch %d\n", epoch); err != nil {
		tmp.Close()
		return fmt.Errorf("supervise: checkpoint save: %w", err)
	}
	if err := snap.Encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("supervise: checkpoint save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("supervise: checkpoint save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("supervise: checkpoint save: %w", err)
	}
	return nil
}

// Load implements CheckpointStore.
func (d *DirStore) Load(key string) (*Snapshot, uint64, error) {
	f, err := os.Open(d.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("supervise: checkpoint load: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, 0, fmt.Errorf("supervise: checkpoint load: %w", snapErrf("missing epoch header"))
	}
	epoch, ok := parseEpochHeader(strings.TrimSuffix(line, "\n"))
	if !ok {
		return nil, 0, fmt.Errorf("supervise: checkpoint load: %w", snapErrf("malformed epoch header %q", line))
	}
	snap, err := DecodeSnapshot(br)
	if err != nil {
		return nil, 0, fmt.Errorf("supervise: checkpoint load: %w", err)
	}
	return snap, epoch, nil
}

// Delete implements CheckpointStore.
func (d *DirStore) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	path := d.path(key)
	release, err := d.lock(path)
	if err != nil {
		return err
	}
	defer release()
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("supervise: checkpoint delete: %w", err)
	}
	return nil
}

// Keys lists the hashed filenames currently stored — observability and
// tests; the opaque keys themselves are not recoverable from the hash.
func (d *DirStore) Keys() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			keys = append(keys, strings.TrimSuffix(e.Name(), ".ckpt"))
		}
	}
	return keys, nil
}
