// Package supervise wraps the transducer runner in a self-healing
// supervision loop: attempts run stepwise (internal/pt.StepRun) so that
// any failure — timeout, budget, injected fault, contained panic —
// leaves a consistent (tree, frontier) checkpoint; transient failures
// are retried with capped exponential backoff and an options
// degradation ladder; and progress carries FORWARD across attempts, so
// a sequence of budget-bounded attempts completes work no single budget
// allows. Checkpoints serialize (snapshot.go) and resume across
// processes with the same byte-for-byte output guarantee.
package supervise

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/xmltree"
)

// Backoff shapes the delay between attempts: capped exponential with
// deterministic seeded jitter, so a whole retry schedule is
// reproducible from one integer (the same discipline FaultPlan uses for
// fault schedules).
type Backoff struct {
	Base   time.Duration // first delay; default 10ms
	Max    time.Duration // cap; default 2s
	Factor float64       // growth per attempt; default 2
	Jitter float64       // ± fraction of the delay; default 0 (none)
	Seed   int64         // jitter PRNG seed
}

// delay returns the wait before retry number n (1-based).
func (b Backoff) delay(n int, rng *rand.Rand) time.Duration {
	base, max, factor := b.Base, b.Max, b.Factor
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 1; i < n; i++ {
		d *= factor
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	if j := b.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		d *= 1 + j*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// Options configures a supervised run.
type Options struct {
	// Run is the per-attempt transducer configuration. Budgets are FRESH
	// each attempt (progress accumulates, so repeated bounded attempts
	// converge); Cache above CacheQueries is capped by the stepwise
	// runner and Workers is ignored (checkpointable runs are serial).
	Run pt.Options

	// Retries is the number of retries after the first attempt; 0 means
	// fail on the first error.
	Retries int

	// Backoff shapes the inter-attempt delay.
	Backoff Backoff

	// Checkpoint captures a Snapshot of the failure frontier into
	// Report.Snapshot whenever an attempt fails, so callers can persist
	// it and Resume later (possibly in another process).
	Checkpoint bool

	// CheckpointEvery additionally captures a snapshot every N completed
	// steps (0 disables). Periodic snapshots deep-copy the tree, so
	// small values are expensive on large outputs.
	CheckpointEvery int64

	// OnCheckpoint, when set, observes every periodic snapshot as it is
	// captured — the hook a clustered server uses to persist progress
	// into a shared CheckpointStore mid-run. A non-nil return ABORTS the
	// attempt with that error: a store that rejects the write with
	// *ErrFenced is telling this node it lost ownership of the run, and
	// continuing would only burn cycles on a result nobody will accept.
	// Fencing errors are permanent (not Retryable), so the supervision
	// loop stops rather than retrying into the same fence.
	OnCheckpoint func(*Snapshot) error

	// DisableDegrade turns off the options degradation ladder, retrying
	// every attempt with Run unchanged.
	DisableDegrade bool

	// Sleep replaces time.Sleep between attempts (tests and chaos runs
	// pass a recorder so schedules are checked without waiting).
	Sleep func(time.Duration)

	// OnRetry, when set, observes each retry decision: the attempt that
	// failed (1-based), its error, and the options the next attempt will
	// use.
	OnRetry func(attempt int, err error, next pt.Options)
}

// Report describes what the supervision loop did, whether or not it
// succeeded.
type Report struct {
	// Attempts is the number of attempts started (≥1).
	Attempts int
	// Ops is the total number of completed steps across all attempts.
	Ops int64
	// Errs holds each failed attempt's error in order; on overall
	// success its length is Attempts-1.
	Errs []error
	// Snapshot is the most recent checkpoint captured (failure-time when
	// Options.Checkpoint is set, else the last periodic one); nil when
	// none was taken.
	Snapshot *Snapshot
	// FinalOptions is the per-attempt configuration the last attempt
	// ran with — shows how far the degradation ladder went.
	FinalOptions pt.Options
}

// Retryable classifies an error for the supervision loop: true means a
// fresh attempt may succeed. Budget exhaustion is retryable because
// attempts get fresh budgets while progress accumulates; deadline
// expiry likewise. Explicit cancellation is an instruction to stop, and
// anything untyped (spec bugs, validation failures) is permanent.
// Internal errors (contained panics) are retryable because the
// degradation ladder may route around the failing component.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if runctl.IsTransient(err) {
		return true
	}
	var budget *runctl.ErrBudget
	if errors.As(err, &budget) {
		return true
	}
	var canceled *runctl.ErrCanceled
	if errors.As(err, &canceled) {
		return errors.Is(canceled.Cause, context.DeadlineExceeded)
	}
	var internal *runctl.ErrInternal
	return errors.As(err, &internal)
}

// degrade is the options ladder: each rung gives up a performance
// feature that could itself be implicated in the failure. attempt is
// the 1-based attempt that just failed; the returned options configure
// attempt+1. Rungs are cumulative: by the fourth retry the run is
// serial and cache-free — the simplest configuration that can still
// make progress.
func degrade(attempt int, o pt.Options) pt.Options {
	if attempt >= 2 && o.Cache > pt.CacheQueries {
		o.Cache = pt.CacheQueries
	}
	if attempt >= 3 {
		o.Workers = 1
	}
	if attempt >= 4 {
		o.Cache = pt.CacheOff
	}
	return o
}

// Run executes tr on inst under supervision and returns the final
// result. The Report is non-nil in every case, including errors.
func Run(ctx context.Context, tr *pt.Transducer, inst *relation.Instance, o Options) (*pt.Result, *Report, error) {
	return loop(ctx, tr, inst, o, nil)
}

// Resume continues a checkpointed run. The snapshot is verified against
// tr and inst first; budgets in o.Run are fresh for the resumed
// attempt. The combined output is byte-identical to an uninterrupted
// run's.
func Resume(ctx context.Context, tr *pt.Transducer, inst *relation.Instance, snap *Snapshot, o Options) (*pt.Result, *Report, error) {
	if snap == nil {
		return nil, &Report{}, errors.New("supervise: nil snapshot")
	}
	if err := snap.Verify(tr, inst); err != nil {
		return nil, &Report{}, err
	}
	return loop(ctx, tr, inst, o, snap)
}

// Output is Run followed by publishing (virtual-tag splicing +
// register/state stripping), mirroring pt.Output.
func Output(ctx context.Context, tr *pt.Transducer, inst *relation.Instance, o Options) (*xmltree.Tree, *Report, error) {
	res, rep, err := Run(ctx, tr, inst, o)
	if err != nil {
		return nil, rep, err
	}
	return res.Xi.Publish(tr.Virtual), rep, nil
}

// Retry applies the supervision retry policy — transient
// classification, capped seeded backoff — to an operation that is
// cheap to restart from scratch and has no checkpointable state (the
// CLI decision procedures). f receives the 1-based attempt number; the
// returned attempt count is how many times f ran.
func Retry(ctx context.Context, retries int, b Backoff, sleep func(time.Duration), f func(attempt int) error) (int, error) {
	if sleep == nil {
		sleep = time.Sleep
	}
	rng := rand.New(rand.NewSource(b.Seed))
	for attempt := 1; ; attempt++ {
		err := f(attempt)
		if err == nil {
			return attempt, nil
		}
		if attempt > retries || !Retryable(err) || (ctx != nil && ctx.Err() != nil) {
			return attempt, err
		}
		sleep(b.delay(attempt, rng))
	}
}

// loop is the supervision engine shared by Run and Resume.
func loop(ctx context.Context, tr *pt.Transducer, inst *relation.Instance, o Options, snap *Snapshot) (*pt.Result, *Report, error) {
	rep := &Report{FinalOptions: o.Run}
	sleep := o.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	rng := rand.New(rand.NewSource(o.Backoff.Seed))

	// Progress state threaded between attempts. A failed attempt's
	// frontier becomes the next attempt's starting point.
	var root *xmltree.Node
	var pending []pt.PendingConfig
	var prior pt.Stats
	restored := snap != nil
	if restored {
		root, pending, prior = snap.Tree.Root, snap.Pending, snap.Stats
	}

	cur := o.Run
	for attempt := 1; ; attempt++ {
		rep.Attempts = attempt
		rep.FinalOptions = cur

		var sr *pt.StepRun
		var err error
		if restored {
			sr, err = tr.RestoreStepRun(ctx, inst, cur, root, pending, prior)
		} else {
			sr, err = tr.NewStepRun(ctx, inst, cur)
		}
		if err != nil {
			// Setup failures (invalid spec, malformed frontier) are
			// permanent: retrying cannot change them.
			return nil, rep, err
		}

		res, runErr := drive(ctx, tr, inst, sr, o, rep)
		rep.Ops += sr.Ops()
		if runErr == nil {
			sr.Close()
			return res, rep, nil
		}
		rep.Errs = append(rep.Errs, runErr)

		// Atomic steps mean the failed run's (tree, frontier) is exactly
		// the remaining work; carry it into the next attempt.
		root = sr.Tree().Root
		pending = sr.Pending()
		prior = sr.StatsSoFar()
		restored = true
		if o.Checkpoint {
			rep.Snapshot = Capture(tr, inst, sr)
		}
		sr.Close()

		if attempt > o.Retries || !Retryable(runErr) || ctx.Err() != nil {
			return nil, rep, runErr
		}
		next := cur
		if !o.DisableDegrade {
			next = degrade(attempt, o.Run)
		}
		if o.OnRetry != nil {
			o.OnRetry(attempt, runErr, next)
		}
		cur = next
		sleep(o.Backoff.delay(attempt, rng))
	}
}

// drive steps one attempt to completion, taking periodic checkpoints.
func drive(ctx context.Context, tr *pt.Transducer, inst *relation.Instance, sr *pt.StepRun, o Options, rep *Report) (*pt.Result, error) {
	for !sr.Done() {
		if _, err := sr.Step(); err != nil {
			return nil, err
		}
		if o.CheckpointEvery > 0 && sr.Ops()%o.CheckpointEvery == 0 {
			rep.Snapshot = Capture(tr, inst, sr)
			if o.OnCheckpoint != nil {
				if err := o.OnCheckpoint(rep.Snapshot); err != nil {
					return nil, err
				}
			}
		}
	}
	return sr.Result()
}
