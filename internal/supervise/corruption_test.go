package supervise_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/supervise"
)

// encodedSnapshot builds a real mid-run checkpoint and returns its
// encoded bytes — the corpus every corruption below mutates.
func encodedSnapshot(t *testing.T) []byte {
	t.Helper()
	tr, inst := registrar.Tau1(), registrar.SampleInstance()
	sr, err := tr.NewStepRun(context.Background(), inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	// Step a few times so the tree and frontier are non-trivial.
	for i := 0; i < 3 && !sr.Done(); i++ {
		if _, err := sr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := supervise.Capture(tr, inst, sr).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeMutant runs the decoder on a mutated checkpoint, converting any
// panic into a test failure that names the mutation.
func decodeMutant(t *testing.T, label string, data []byte) (snap *supervise.Snapshot, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: decoder panicked: %v", label, r)
		}
	}()
	return supervise.DecodeSnapshot(bytes.NewReader(data))
}

// TestDecodeTruncation: a checkpoint cut off at ANY byte boundary must
// fail with the typed *SnapshotError — a partially-written file (node
// crash mid-save) can never be resumed from.
func TestDecodeTruncation(t *testing.T) {
	good := encodedSnapshot(t)
	if _, err := supervise.DecodeSnapshot(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot does not decode: %v", err)
	}
	// Every cut except the trailing newline after the end marker (the
	// checksum has already validated the full payload by then) must fail.
	for cut := 0; cut < len(good)-1; cut++ {
		_, err := decodeMutant(t, "truncation", good[:cut])
		if err == nil {
			t.Fatalf("truncation at byte %d/%d decoded successfully", cut, len(good))
		}
		var se *supervise.SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("truncation at byte %d: error is not a *SnapshotError: %v", cut, err)
		}
	}
}

// TestDecodeBitFlips: seeded single-bit flips anywhere in the file must
// be rejected (typed, no panic) — the payload checksum catches the
// flips the structural checks cannot see (inside quoted data, inside
// the fingerprints, inside the checksum line itself).
func TestDecodeBitFlips(t *testing.T) {
	good := encodedSnapshot(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		bad := bytes.Clone(good)
		pos := rng.Intn(len(bad))
		bad[pos] ^= 1 << rng.Intn(8)
		_, err := decodeMutant(t, "bit flip", bad)
		if err == nil {
			t.Fatalf("trial %d: flip at byte %d decoded successfully", trial, pos)
		}
		var se *supervise.SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("trial %d: flip at byte %d: error is not a *SnapshotError: %v", trial, pos, err)
		}
	}
}

// TestDecodeHostileCounts: counts inflated far beyond the data (the
// worst case a flipped digit produces) must fail by validation, not by
// attempting a giant allocation.
func TestDecodeHostileCounts(t *testing.T) {
	good := string(encodedSnapshot(t))
	mutants := map[string]string{
		"huge node count":    mutateFirst(good, "nodes ", "4611686018427387904"),
		"huge pending count": mutateFirst(good, "pending ", "4611686018427387904"),
	}
	for name, bad := range mutants {
		if bad == good {
			t.Fatalf("%s: mutation did not apply", name)
		}
		_, err := decodeMutant(t, name, []byte(bad))
		if err == nil {
			t.Fatalf("%s: decoded successfully", name)
		}
		var se *supervise.SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("%s: error is not a *SnapshotError: %v", name, err)
		}
	}
}

// mutateFirst replaces the number following the first occurrence of
// prefix, keeping the surrounding line structure intact so only the
// count goes hostile.
func mutateFirst(s, prefix, count string) string {
	i := strings.Index(s, prefix)
	if i < 0 {
		return s
	}
	j := i + len(prefix)
	k := j
	for k < len(s) && s[k] != '\n' && s[k] != ' ' {
		k++
	}
	return s[:j] + count + s[k:]
}
