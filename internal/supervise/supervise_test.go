package supervise_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"ptx/internal/families"
	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/supervise"
	"ptx/internal/testutil"
)

func workloads() map[string]struct {
	tr   *pt.Transducer
	inst *relation.Instance
} {
	return map[string]struct {
		tr   *pt.Transducer
		inst *relation.Instance
	}{
		"tau1/sample": {registrar.Tau1(), registrar.SampleInstance()},
		"tau3/sample": {registrar.Tau3(), registrar.SampleInstance()},
		"unfold/d6":   {families.UnfoldTransducer(), families.DiamondChain(6)},
		"counter/n2":  {families.CounterTransducer(), families.CounterInstance(2)},
	}
}

func canonical(t *testing.T, tr *pt.Transducer, res *pt.Result) string {
	t.Helper()
	var sb strings.Builder
	if err := res.Xi.WriteCanonicalVirtual(&sb, tr.Virtual); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return sb.String()
}

// noSleep makes retries instantaneous while recording the schedule.
func noSleep(delays *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *delays = append(*delays, d) }
}

// TestSupervisedMatchesRun: the happy path through supervision is
// byte-identical to the plain runner.
func TestSupervisedMatchesRun(t *testing.T) {
	for name, w := range workloads() {
		t.Run(name, func(t *testing.T) {
			golden, err := w.tr.Run(w.inst, pt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, rep, err := supervise.Run(context.Background(), w.tr, w.inst, supervise.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Attempts != 1 || len(rep.Errs) != 0 {
				t.Errorf("clean run: attempts=%d errs=%v", rep.Attempts, rep.Errs)
			}
			if canonical(t, w.tr, res) != canonical(t, w.tr, golden) {
				t.Error("supervised output differs from Run")
			}
		})
	}
}

// TestSnapshotResumeDifferential is the ISSUE acceptance criterion at
// the supervise layer: interrupt at the k-th operation (sweep of k),
// serialize the checkpoint through the full Encode/Decode path, resume,
// and require canonical bytes identical to the uninterrupted run —
// across cache modes and worker counts.
func TestSnapshotResumeDifferential(t *testing.T) {
	for name, w := range workloads() {
		t.Run(name, func(t *testing.T) {
			golden, err := w.tr.Run(w.inst, pt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := canonical(t, w.tr, golden)

			probe, err := w.tr.NewStepRun(context.Background(), w.inst, pt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := probe.Run(); err != nil {
				t.Fatal(err)
			}
			total := int(probe.Ops())
			probe.Close()

			for _, cfg := range []pt.Options{
				{},
				{Cache: pt.CacheQueries},
				{Cache: pt.CacheSubtrees, Workers: 4},
			} {
				for k := 0; k < total; k += 1 + total/8 {
					sr, err := w.tr.NewStepRun(context.Background(), w.inst, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < k; i++ {
						if _, err := sr.Step(); err != nil {
							t.Fatalf("k=%d: %v", k, err)
						}
					}
					snap := supervise.Capture(w.tr, w.inst, sr)
					sr.Close()

					var buf bytes.Buffer
					if err := snap.Encode(&buf); err != nil {
						t.Fatalf("k=%d encode: %v", k, err)
					}
					decoded, err := supervise.DecodeSnapshot(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatalf("k=%d decode: %v", k, err)
					}
					res, rep, err := supervise.Resume(context.Background(), w.tr, w.inst, decoded, supervise.Options{Run: cfg})
					if err != nil {
						t.Fatalf("k=%d resume: %v", k, err)
					}
					if rep.Attempts != 1 {
						t.Errorf("k=%d: resume took %d attempts", k, rep.Attempts)
					}
					if got := canonical(t, w.tr, res); got != want {
						t.Errorf("k=%d cfg=%+v: resumed output differs from uninterrupted run", k, cfg)
					}
					if res.Stats.Nodes != golden.Stats.Nodes {
						t.Errorf("k=%d: resumed Nodes=%d, want %d", k, res.Stats.Nodes, golden.Stats.Nodes)
					}
				}
			}
		})
	}
}

// TestSnapshotRoundTripStable: encode→decode→encode is byte-stable, so
// checkpoints can themselves be fingerprinted and diffed.
func TestSnapshotRoundTripStable(t *testing.T) {
	tr, inst := registrar.Tau1(), registrar.SampleInstance()
	sr, err := tr.NewStepRun(context.Background(), inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	for i := 0; i < 3; i++ {
		if _, err := sr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := supervise.Capture(tr, inst, sr)
	var a, b bytes.Buffer
	if err := snap.Encode(&a); err != nil {
		t.Fatal(err)
	}
	decoded, err := supervise.DecodeSnapshot(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshot encoding is not round-trip stable")
	}
}

// TestSelfHealingBudget: no single MaxQueries budget completes the run,
// but attempts accumulate progress, so supervision converges to the
// exact golden bytes.
func TestSelfHealingBudget(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(5)
	golden, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if golden.Stats.QueriesRun <= 10 {
		t.Fatalf("workload too small: %d queries", golden.Stats.QueriesRun)
	}
	// Each attempt completes ~MaxQueries more steps before tripping, so
	// ceil(total/10)+slack attempts always suffice.
	retries := golden.Stats.QueriesRun/10 + 10
	var delays []time.Duration
	res, rep, err := supervise.Run(context.Background(), tr, inst, supervise.Options{
		Run:     pt.Options{Limits: &runctl.Limits{MaxQueries: 10}},
		Retries: retries,
		Sleep:   noSleep(&delays),
	})
	if err != nil {
		t.Fatalf("self-healing run failed: %v (attempts=%d)", err, rep.Attempts)
	}
	if rep.Attempts < 2 {
		t.Fatalf("expected multiple attempts, got %d", rep.Attempts)
	}
	if canonical(t, tr, res) != canonical(t, tr, golden) {
		t.Error("self-healed output differs from golden")
	}
	for _, e := range rep.Errs {
		var be *runctl.ErrBudget
		if !errors.As(e, &be) {
			t.Errorf("intermediate error not a budget error: %v", e)
		}
	}
}

// TestTransientFaultRetried: an Nth-op fault wrapped Transient fires
// once; the retry resumes from the failure frontier and succeeds.
func TestTransientFaultRetried(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)
	golden, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := &runctl.FaultPlan{Op: runctl.OpQuery, N: 7, Err: runctl.Transient(errors.New("blip"))}
	var delays []time.Duration
	res, rep, err := supervise.Run(context.Background(), tr, inst, supervise.Options{
		Run:     pt.Options{Faults: plan},
		Retries: 2,
		Sleep:   noSleep(&delays),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 2 || len(rep.Errs) != 1 || len(delays) != 1 {
		t.Fatalf("attempts=%d errs=%d delays=%d, want 2/1/1", rep.Attempts, len(rep.Errs), len(delays))
	}
	if !runctl.IsTransient(rep.Errs[0]) {
		t.Errorf("recorded error lost its transient marker: %v", rep.Errs[0])
	}
	if canonical(t, tr, res) != canonical(t, tr, golden) {
		t.Error("retried output differs from golden")
	}
}

// TestPermanentErrorNotRetried: an unmarked fault error fails fast.
func TestPermanentErrorNotRetried(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)
	boom := errors.New("permanent")
	plan := &runctl.FaultPlan{Op: runctl.OpQuery, N: 3, Err: boom}
	_, rep, err := supervise.Run(context.Background(), tr, inst, supervise.Options{
		Run:     pt.Options{Faults: plan},
		Retries: 5,
		Sleep:   func(time.Duration) { t.Error("slept before a permanent error") },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the injected permanent error", err)
	}
	if rep.Attempts != 1 {
		t.Errorf("permanent error retried: %d attempts", rep.Attempts)
	}
}

// TestCancellationNotRetried: explicit cancellation is an instruction
// to stop, not a fault to heal.
func TestCancellationNotRetried(t *testing.T) {
	tr := families.CounterTransducer()
	inst := families.CounterInstance(6) // effectively unbounded
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, rep, err := supervise.Run(ctx, tr, inst, supervise.Options{Retries: 5})
	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *runctl.ErrCanceled", err)
	}
	if rep.Attempts != 1 {
		t.Errorf("cancellation retried: %d attempts", rep.Attempts)
	}
}

// TestDeadlineRetriedWithFreshBudget: per-attempt wall-clock budgets
// are fresh, so a deadline small enough to interrupt but large enough
// to make progress eventually completes the run.
func TestDeadlineRetriedWithFreshBudget(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(8)
	golden, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var delays []time.Duration
	res, rep, err := supervise.Run(context.Background(), tr, inst, supervise.Options{
		Run:     pt.Options{Limits: &runctl.Limits{Timeout: 30 * time.Millisecond}},
		Retries: 200,
		Sleep:   noSleep(&delays),
	})
	if err != nil {
		t.Fatalf("deadline self-healing failed after %d attempts: %v", rep.Attempts, err)
	}
	if canonical(t, tr, res) != canonical(t, tr, golden) {
		t.Error("output differs from golden")
	}
}

// TestBackoffDeterministic: the same seed yields the same jittered
// schedule; growth is capped at Max.
func TestBackoffDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		tr := families.UnfoldTransducer()
		inst := families.DiamondChain(4)
		plan := runctl.SeededPlan(1, runctl.Transient(errors.New("blip")), map[runctl.Op]float64{runctl.OpQuery: 0.4})
		var delays []time.Duration
		supervise.Run(context.Background(), tr, inst, supervise.Options{
			Run:     pt.Options{Faults: plan},
			Retries: 30,
			Backoff: supervise.Backoff{Base: time.Millisecond, Max: 16 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: seed},
			Sleep:   noSleep(&delays),
		})
		return delays
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("no retries happened; fault plan too weak")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
		if a[i] > 24*time.Millisecond { // Max plus full jitter
			t.Fatalf("delay %d = %v exceeds cap+jitter", i, a[i])
		}
	}
	if c := run(43); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical jitter schedules")
		}
	}
}

// TestDegradationLadder: with every query failing, the retry sequence
// must walk the ladder — cache capped, then serial, then cache off.
func TestDegradationLadder(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)
	plan := runctl.SeededPlan(7, runctl.Transient(errors.New("blip")), map[runctl.Op]float64{runctl.OpQuery: 1})
	var ladder []pt.Options
	var delays []time.Duration
	_, rep, err := supervise.Run(context.Background(), tr, inst, supervise.Options{
		Run:     pt.Options{Cache: pt.CacheSubtrees, Workers: 4, Faults: plan},
		Retries: 4,
		Sleep:   noSleep(&delays),
		OnRetry: func(attempt int, err error, next pt.Options) { ladder = append(ladder, next) },
	})
	if err == nil {
		t.Fatal("run with p=1 query faults succeeded")
	}
	if rep.Attempts != 5 || len(ladder) != 4 {
		t.Fatalf("attempts=%d ladder=%d, want 5/4", rep.Attempts, len(ladder))
	}
	if ladder[0].Cache != pt.CacheSubtrees || ladder[0].Workers != 4 {
		t.Errorf("retry 1 should be unchanged, got %+v", ladder[0])
	}
	if ladder[1].Cache != pt.CacheQueries {
		t.Errorf("retry 2 should cap the cache, got %+v", ladder[1])
	}
	if ladder[2].Workers != 1 || ladder[2].Cache != pt.CacheQueries {
		t.Errorf("retry 3 should go serial, got %+v", ladder[2])
	}
	if ladder[3].Cache != pt.CacheOff || ladder[3].Workers != 1 {
		t.Errorf("retry 4 should turn caching off, got %+v", ladder[3])
	}
	if rep.FinalOptions.Cache != pt.CacheOff {
		t.Errorf("FinalOptions should reflect the last rung, got %+v", rep.FinalOptions)
	}
}

// TestFailureCheckpointResumable: Options.Checkpoint captures the
// failure frontier; resuming it completes to the golden bytes.
func TestFailureCheckpointResumable(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)
	golden, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("permanent")
	plan := &runctl.FaultPlan{Op: runctl.OpQuery, N: 9, Err: boom}
	_, rep, err := supervise.Run(context.Background(), tr, inst, supervise.Options{
		Run:        pt.Options{Faults: plan},
		Checkpoint: true,
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if rep.Snapshot == nil {
		t.Fatal("no failure checkpoint captured")
	}
	var buf bytes.Buffer
	if err := rep.Snapshot.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := supervise.DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := supervise.Resume(context.Background(), tr, inst, snap, supervise.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if canonical(t, tr, res) != canonical(t, tr, golden) {
		t.Error("resumed-from-failure output differs from golden")
	}
}

// TestVerifyRejectsMismatch: a snapshot must not resume against a
// different transducer or instance.
func TestVerifyRejectsMismatch(t *testing.T) {
	tr, inst := registrar.Tau1(), registrar.SampleInstance()
	sr, err := tr.NewStepRun(context.Background(), inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	snap := supervise.Capture(tr, inst, sr)
	if _, _, err := supervise.Resume(context.Background(), registrar.Tau3(), inst, snap, supervise.Options{}); err == nil {
		t.Error("resume against a different transducer accepted")
	}
	if _, _, err := supervise.Resume(context.Background(), tr, registrar.ChainInstance(3), snap, supervise.Options{}); err == nil {
		t.Error("resume against a different instance accepted")
	}
}

// TestDecodeRejectsCorruption: structural validation on decode.
func TestDecodeRejectsCorruption(t *testing.T) {
	tr, inst := registrar.Tau1(), registrar.SampleInstance()
	sr, err := tr.NewStepRun(context.Background(), inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	var buf bytes.Buffer
	if err := supervise.Capture(tr, inst, sr).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	mutations := map[string]string{
		"bad magic":     strings.Replace(good, "ptx-checkpoint 2", "ptx-checkpoint 9", 1),
		"truncated":     good[:len(good)/2],
		"no end marker": strings.TrimSuffix(good, "end\n"),
		"negative node": strings.Replace(good, "nodes 1", "nodes -1", 1),
	}
	for name, bad := range mutations {
		if _, err := supervise.DecodeSnapshot(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: decode accepted corrupt snapshot", name)
		}
	}
	// Forward/undefined node references must be rejected (cycle guard).
	fwd := strings.Replace(good, "pending 1\np 0 ", "pending 1\np 7 ", 1)
	if _, err := supervise.DecodeSnapshot(strings.NewReader(fwd)); err == nil {
		t.Error("decode accepted out-of-range pending reference")
	}
}

// TestPeriodicCheckpoints: CheckpointEvery leaves a recent snapshot in
// the report even on success.
func TestPeriodicCheckpoints(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)
	_, rep, err := supervise.Run(context.Background(), tr, inst, supervise.Options{CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot == nil {
		t.Fatal("no periodic snapshot captured")
	}
	if err := rep.Snapshot.Verify(tr, inst); err != nil {
		t.Error(err)
	}
}

// TestSupervisedNoGoroutineLeaks: faulted, retried and timed-out
// supervised runs leave no goroutines behind.
func TestSupervisedNoGoroutineLeaks(t *testing.T) {
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)
	base := runtime.NumGoroutine()
	var delays []time.Duration
	for seed := int64(0); seed < 8; seed++ {
		plan := runctl.SeededPlan(seed, runctl.Transient(errors.New("blip")), map[runctl.Op]float64{runctl.OpQuery: 0.2})
		supervise.Run(context.Background(), tr, inst, supervise.Options{
			Run:     pt.Options{Faults: plan, Limits: &runctl.Limits{Timeout: 50 * time.Millisecond}},
			Retries: 3,
			Sleep:   noSleep(&delays),
		})
	}
	testutil.SettledGoroutines(t, base)
}
