// Race-mode test: many goroutines supervise the SAME (transducer,
// instance) pair concurrently, sharing one query memo while keeping
// independent checkpoints and retry schedules. The invariants: every
// successful output is byte-identical, every failure is typed, and
// nothing leaks a goroutine — exactly what the serving layer relies on
// when it lets supervised publishes overlap.
package supervise_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ptx/internal/eval"
	"ptx/internal/families"
	"ptx/internal/pt"
	"ptx/internal/runctl"
	"ptx/internal/supervise"
	"ptx/internal/testutil"
)

type errConcurrent string

func (e errConcurrent) Error() string { return string(e) }

func TestConcurrentSupervisedRuns(t *testing.T) {
	base := runtime.NumGoroutine()
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(6)

	baseline, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := baseline.Xi.WriteCanonicalVirtual(&sb, tr.Virtual); err != nil {
		t.Fatal(err)
	}
	want := sb.String()

	memo := eval.NewMemo(0)
	const workers = 16
	var wg sync.WaitGroup
	outputs := make([]string, workers)
	failures := make([]error, workers)
	attempts := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := supervise.Options{
				Run: pt.Options{
					Cache: pt.CacheQueries,
					Memo:  memo, // shared: same transducer, same instance
				},
				Retries:    2,
				Checkpoint: true, // checkpoints stay per-run
				Sleep:      func(time.Duration) {},
			}
			// Every third worker runs under a fault plan that trips the
			// second query of each attempt a couple of times; the others
			// run clean but race them on the shared memo.
			if i%3 == 0 {
				opts.Run.Faults = &runctl.FaultPlan{
					Op: runctl.OpQuery, N: 2,
					Err: runctl.Transient(errConcurrent("concurrent fault")),
				}
			}
			res, rep, err := supervise.Run(context.Background(), tr, inst, opts)
			if rep != nil {
				attempts[i] = rep.Attempts
			}
			if err != nil {
				failures[i] = err
				return
			}
			var out strings.Builder
			if serr := res.Xi.WriteCanonicalVirtual(&out, tr.Virtual); serr != nil {
				failures[i] = serr
				return
			}
			outputs[i] = out.String()
		}(i)
	}
	wg.Wait()

	succeeded, retried := 0, 0
	for i := 0; i < workers; i++ {
		if failures[i] != nil {
			// The only legitimate failure is the injected transient one,
			// fully typed, after exhausting this worker's own retries.
			if !runctl.IsTransient(failures[i]) {
				t.Errorf("worker %d: untyped failure: %v", i, failures[i])
			}
			continue
		}
		succeeded++
		if attempts[i] > 1 {
			retried++
		}
		if outputs[i] != want {
			t.Errorf("worker %d: output diverged from the unsupervised baseline", i)
		}
	}
	if succeeded == 0 {
		t.Fatal("no supervised worker succeeded")
	}
	// The clean workers (2/3 of the pool) never fault, so at least they
	// must all have completed.
	if succeeded < workers-workers/3-1 {
		t.Errorf("only %d/%d workers succeeded", succeeded, workers)
	}
	t.Logf("concurrent supervised runs: %d succeeded (%d via retry), %d failed typed",
		succeeded, retried, workers-succeeded)
	testutil.SettledGoroutines(t, base)
}

// TestConcurrentSupervisedCancel: canceling the shared context
// mid-flight must surface typed cancellation everywhere and leave no
// goroutines behind — the drain path of the serving layer in
// miniature.
func TestConcurrentSupervisedCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	tr := families.UnfoldTransducer()
	inst := families.DiamondChain(8)
	memo := eval.NewMemo(0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: every attempt must stop immediately

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := supervise.Run(ctx, tr, inst, supervise.Options{
				Run:     pt.Options{Cache: pt.CacheQueries, Memo: memo},
				Retries: 3,
				Sleep:   func(time.Duration) {},
			})
			var ce *runctl.ErrCanceled
			if err == nil || !errors.As(err, &ce) {
				t.Errorf("canceled supervised run returned %v, want *runctl.ErrCanceled", err)
			}
		}()
	}
	wg.Wait()
	testutil.SettledGoroutines(t, base)
}
