package supervise_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ptx/internal/pt"
	"ptx/internal/registrar"
	"ptx/internal/supervise"
)

func testSnapshot(t *testing.T) *supervise.Snapshot {
	t.Helper()
	tr, inst := registrar.Tau1(), registrar.SampleInstance()
	sr, err := tr.NewStepRun(context.Background(), inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	return supervise.Capture(tr, inst, sr)
}

// TestDirStoreRoundTrip: save, load (same epoch, verifiable snapshot),
// delete, and absent-key behavior.
func TestDirStoreRoundTrip(t *testing.T) {
	st, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(t)

	if got, epoch, err := st.Load("run-1"); err != nil || got != nil || epoch != 0 {
		t.Fatalf("empty store Load = (%v, %d, %v), want (nil, 0, nil)", got, epoch, err)
	}
	if err := st.Save("run-1", 3, snap); err != nil {
		t.Fatal(err)
	}
	got, epoch, err := st.Load("run-1")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 3 {
		t.Fatalf("loaded epoch %d, want 3", epoch)
	}
	if err := got.Verify(registrar.Tau1(), registrar.SampleInstance()); err != nil {
		t.Fatalf("loaded snapshot does not verify: %v", err)
	}
	if err := st.Delete("run-1"); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.Load("run-1"); got != nil {
		t.Fatal("snapshot survived Delete")
	}
	if err := st.Delete("run-1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

// TestDirStoreFencing is the zombie-write contract: once a successor
// has written at a higher epoch, the old owner's saves are rejected
// with *ErrFenced and the successor's progress survives untouched;
// same-epoch overwrites (one owner progressing) stay allowed, and a
// successor may overwrite its predecessor.
func TestDirStoreFencing(t *testing.T) {
	st, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(t)

	if err := st.Save("run", 1, snap); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("run", 1, snap); err != nil {
		t.Fatalf("same-epoch overwrite rejected: %v", err)
	}
	if err := st.Save("run", 2, snap); err != nil {
		t.Fatalf("successor write rejected: %v", err)
	}
	err = st.Save("run", 1, snap)
	var fe *supervise.ErrFenced
	if !errors.As(err, &fe) {
		t.Fatalf("zombie write: got %v, want *ErrFenced", err)
	}
	if fe.Epoch != 1 || fe.Stored != 2 {
		t.Fatalf("fence detail: %+v", fe)
	}
	// The successor's entry is intact after the rejected write.
	if _, epoch, err := st.Load("run"); err != nil || epoch != 2 {
		t.Fatalf("after fenced write: Load epoch %d err %v, want 2 nil", epoch, err)
	}
}

// TestDirStoreCorruptEntry: a torn or damaged file in the store
// surfaces as the codec's typed error — never resumed from, never a
// panic.
func TestDirStoreCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	st, err := supervise.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("run", 1, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = st.Load("run")
	var se *supervise.SnapshotError
	if !errors.As(err, &se) {
		t.Fatalf("corrupt entry Load: got %v, want wrapped *SnapshotError", err)
	}
}

// TestDirStoreConcurrentSavers: racing writers at mixed epochs never
// corrupt the entry — the surviving file is decodable and carries the
// highest epoch that ever won.
func TestDirStoreConcurrentSavers(t *testing.T) {
	st, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(epoch uint64) {
			defer wg.Done()
			// Fenced rejections are expected for the low epochs.
			_ = st.Save("run", epoch, snap)
		}(uint64(1 + i%4))
	}
	wg.Wait()
	got, epoch, err := st.Load("run")
	if err != nil || got == nil {
		t.Fatalf("after racing savers: Load = (%v, %d, %v)", got, epoch, err)
	}
	if epoch < 1 || epoch > 4 {
		t.Fatalf("stored epoch %d outside the raced range", epoch)
	}
	if err := got.Verify(registrar.Tau1(), registrar.SampleInstance()); err != nil {
		t.Fatalf("raced entry does not verify: %v", err)
	}
}
