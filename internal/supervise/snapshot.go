// Snapshot is the serializable checkpoint of an interrupted run.
//
// The paper's determinism argument (Proposition 1(1)) is what makes a
// small checkpoint sufficient: the children generated at a node depend
// only on its (state, tag, register) configuration and the fixed
// database, so the partial tree plus the frontier of unexpanded
// configurations is a complete description of the remaining work — no
// evaluator state, cache contents or traversal position needs saving.
// Resuming from a snapshot therefore reproduces the uninterrupted run's
// output byte for byte (the invariant the supervise and chaos tests pin).
//
// The format is a line-based text format, versioned, with every
// variable-width field strconv.Quote-d. Nodes are written in
// post-order, children before parents, referencing each other by index;
// a reference to a not-yet-defined node is a decode error, which makes
// cycles structurally unrepresentable. Shared subtrees (the DAG the
// subtree cache builds) encode once and decode back to shared pointers.
package supervise

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ptx/internal/pt"
	"ptx/internal/relation"
	"ptx/internal/value"
	"ptx/internal/xmltree"
)

// snapshotMagic identifies the format; the trailing integer is the
// version and changes on any incompatible layout change. Version 2
// added the payload checksum line ("sum <sha256>") before the end
// marker, so truncation and bit flips are detected even when they land
// inside quoted data the structural checks cannot see.
const snapshotMagic = "ptx-checkpoint 2"

// SnapshotError is the typed validation failure of the checkpoint
// codec: the file is not a well-formed, internally consistent snapshot
// (truncated, bit-flipped, structurally invalid, or checksum-mismatched).
// It is the contract corruption tests pin: a damaged checkpoint NEVER
// panics and NEVER decodes silently — it surfaces as this type so
// callers can fall back to a fresh run instead of resuming from garbage.
type SnapshotError struct {
	Msg string
}

func (e *SnapshotError) Error() string { return "supervise: corrupt snapshot: " + e.Msg }

// snapErrf builds a *SnapshotError.
func snapErrf(format string, args ...any) *SnapshotError {
	return &SnapshotError{Msg: fmt.Sprintf(format, args...)}
}

// Snapshot captures everything needed to resume a run: the partial
// register-carrying tree, the frontier of pending configurations (which
// point into that tree), the counter values accumulated so far, and
// fingerprints binding the checkpoint to one (transducer, instance)
// pair so a snapshot cannot silently resume against the wrong inputs.
type Snapshot struct {
	// TransducerName is informational (error messages); TransducerFP and
	// InstanceFP are sha256 hex fingerprints of the canonical String()
	// renderings, checked by Verify before any resume.
	TransducerName string
	TransducerFP   string
	InstanceFP     string

	// Stats carries the counters of the interrupted run so a resumed
	// run's final statistics match the uninterrupted run's.
	Stats pt.Stats

	// Tree is the partial output tree; frontier nodes still carry their
	// State and every node carries its register.
	Tree *xmltree.Tree

	// Pending is the frontier in StepRun.Pending order (bottom of the
	// stack first); Node fields point into Tree.
	Pending []pt.PendingConfig
}

// Fingerprint returns the sha256 hex digest of a canonical rendering;
// used to bind snapshots to their transducer and instance.
func Fingerprint(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// Capture builds a Snapshot from a live stepwise run. The tree is
// deep-copied (sharing-preserved) so the snapshot stays valid while the
// run keeps mutating, which is what periodic checkpoints need.
func Capture(tr *pt.Transducer, inst *relation.Instance, sr *pt.StepRun) *Snapshot {
	tree, remap := sr.Tree().CloneShared()
	pending := sr.Pending()
	for i := range pending {
		pending[i].Node = remap[pending[i].Node]
	}
	return &Snapshot{
		TransducerName: tr.Name,
		TransducerFP:   Fingerprint(tr.String()),
		InstanceFP:     Fingerprint(inst.String()),
		Stats:          sr.StatsSoFar(),
		Tree:           tree,
		Pending:        pending,
	}
}

// Verify checks that the snapshot was taken for exactly this transducer
// and instance. Resuming against different inputs would not be detected
// at runtime — determinism guarantees agreement only for identical
// inputs — so this is the safety check in front of every Resume.
func (s *Snapshot) Verify(tr *pt.Transducer, inst *relation.Instance) error {
	if fp := Fingerprint(tr.String()); fp != s.TransducerFP {
		return fmt.Errorf("supervise: snapshot was taken for transducer %q (fingerprint %.12s…), not this one (%.12s…)",
			s.TransducerName, s.TransducerFP, fp)
	}
	if fp := Fingerprint(inst.String()); fp != s.InstanceFP {
		return fmt.Errorf("supervise: snapshot instance fingerprint %.12s… does not match this instance (%.12s…)",
			s.InstanceFP, fp)
	}
	return nil
}

// sumWriter tees everything written into a running checksum; Encode
// writes the payload through it so the trailing "sum" line commits to
// the exact bytes a decoder will verify.
type sumWriter struct {
	w *bufio.Writer
	h io.Writer // hash.Hash as a sink
}

func (s *sumWriter) Write(p []byte) (int, error) {
	_, _ = s.h.Write(p)
	return s.w.Write(p)
}

func (s *sumWriter) WriteString(str string) (int, error) {
	_, _ = io.WriteString(s.h, str)
	return s.w.WriteString(str)
}

func (s *sumWriter) WriteByte(b byte) error {
	_, _ = s.h.Write([]byte{b})
	return s.w.WriteByte(b)
}

// Encode writes the snapshot in the versioned text format.
func (s *Snapshot) Encode(w io.Writer) error {
	raw := bufio.NewWriter(w)
	h := sha256.New()
	bw := &sumWriter{w: raw, h: h}
	fmt.Fprintln(bw, snapshotMagic)
	fmt.Fprintf(bw, "transducer %s %s\n", strconv.Quote(s.TransducerName), s.TransducerFP)
	fmt.Fprintf(bw, "instance %s\n", s.InstanceFP)
	fmt.Fprintf(bw, "stats %d %d %d %d\n",
		s.Stats.Nodes, s.Stats.QueriesRun, s.Stats.StopsApplied, s.Stats.MaxDepth)

	ids, order, err := postOrder(s.Tree.Root)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "nodes %d\n", len(order))
	for _, n := range order {
		bw.WriteString("n ")
		bw.WriteString(strconv.Quote(n.Tag))
		bw.WriteByte(' ')
		bw.WriteString(strconv.Quote(n.State))
		bw.WriteByte(' ')
		bw.WriteString(strconv.Quote(n.Text))
		if n.Reg == nil {
			bw.WriteString(" -1 0")
		} else {
			tuples := n.Reg.Tuples()
			fmt.Fprintf(bw, " %d %d", n.Reg.Arity(), len(tuples))
			for _, t := range tuples {
				for _, v := range t {
					bw.WriteByte(' ')
					bw.WriteString(strconv.Quote(string(v)))
				}
			}
		}
		fmt.Fprintf(bw, " %d", len(n.Children))
		for _, c := range n.Children {
			fmt.Fprintf(bw, " %d", ids[c])
		}
		bw.WriteByte('\n')
	}

	fmt.Fprintf(bw, "pending %d\n", len(s.Pending))
	for _, p := range s.Pending {
		id, ok := ids[p.Node]
		if !ok {
			return fmt.Errorf("supervise: pending node (%s,%s) is not in the snapshot tree", p.Node.State, p.Node.Tag)
		}
		fmt.Fprintf(bw, "p %d %d %d", id, p.Depth, len(p.Ancestors))
		for _, a := range p.Ancestors {
			bw.WriteByte(' ')
			bw.WriteString(strconv.Quote(a))
		}
		bw.WriteByte('\n')
	}
	// The checksum covers every payload byte above; it is written to the
	// raw writer only, so the sum commits to exactly what was hashed.
	fmt.Fprintf(raw, "sum %s\n", hex.EncodeToString(h.Sum(nil)))
	fmt.Fprintln(raw, "end")
	return raw.Flush()
}

// postOrder assigns ids in children-before-parents order over the
// shared-node DAG (each physical node once), iteratively.
func postOrder(root *xmltree.Node) (map[*xmltree.Node]int, []*xmltree.Node, error) {
	if root == nil {
		return nil, nil, fmt.Errorf("supervise: snapshot has nil tree root")
	}
	ids := make(map[*xmltree.Node]int)
	var order []*xmltree.Node
	type frame struct {
		n *xmltree.Node
		i int
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if _, done := ids[f.n]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		if f.i < len(f.n.Children) {
			c := f.n.Children[f.i]
			f.i++
			if c == nil {
				return nil, nil, fmt.Errorf("supervise: nil child under %q", f.n.Tag)
			}
			if _, ok := ids[c]; !ok {
				stack = append(stack, frame{c, 0})
			}
			continue
		}
		ids[f.n] = len(order)
		order = append(order, f.n)
		stack = stack[:len(stack)-1]
	}
	return ids, order, nil
}

// DecodeSnapshot reads and validates a snapshot. Structural guarantees
// on success: node references are acyclic by construction, every
// pending entry points at a reachable, unfinalized, register-carrying
// node of the decoded tree, the counters are non-negative, and the
// payload checksum matches — so truncation or bit flips anywhere in
// the file surface as a typed *SnapshotError, never as a panic and
// never as a silently-wrong resume. Callers still must Verify against
// their transducer and instance.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	h := sha256.New()
	// line reads one payload line and feeds it into the running
	// checksum; the trailing sum/end lines are read with rawLine.
	rawLine := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", snapErrf("reading snapshot: %v", err)
			}
			return "", snapErrf("snapshot truncated")
		}
		return sc.Text(), nil
	}
	line := func() (string, error) {
		l, err := rawLine()
		if err != nil {
			return "", err
		}
		_, _ = io.WriteString(h, l)
		_, _ = h.Write([]byte{'\n'})
		return l, nil
	}

	l, err := line()
	if err != nil {
		return nil, err
	}
	if l != snapshotMagic {
		return nil, snapErrf("not a checkpoint file (got %q, want %q)", l, snapshotMagic)
	}
	s := &Snapshot{}

	if l, err = line(); err != nil {
		return nil, err
	}
	tk := newTok(l)
	if err := tk.literal("transducer"); err != nil {
		return nil, err
	}
	if s.TransducerName, err = tk.quoted(); err != nil {
		return nil, err
	}
	if s.TransducerFP, err = tk.bare(); err != nil {
		return nil, err
	}

	if l, err = line(); err != nil {
		return nil, err
	}
	tk = newTok(l)
	if err := tk.literal("instance"); err != nil {
		return nil, err
	}
	if s.InstanceFP, err = tk.bare(); err != nil {
		return nil, err
	}

	if l, err = line(); err != nil {
		return nil, err
	}
	tk = newTok(l)
	if err := tk.literal("stats"); err != nil {
		return nil, err
	}
	for _, dst := range []*int{&s.Stats.Nodes, &s.Stats.QueriesRun, &s.Stats.StopsApplied, &s.Stats.MaxDepth} {
		if *dst, err = tk.integer(); err != nil {
			return nil, err
		}
		if *dst < 0 {
			return nil, snapErrf("negative counter in snapshot stats")
		}
	}

	if l, err = line(); err != nil {
		return nil, err
	}
	tk = newTok(l)
	if err := tk.literal("nodes"); err != nil {
		return nil, err
	}
	nNodes, err := tk.integer()
	if err != nil {
		return nil, err
	}
	if nNodes < 1 {
		return nil, snapErrf("snapshot has %d nodes, want at least the root", nNodes)
	}
	// Preallocation is capped: a bit-flipped count must fail on token
	// exhaustion, not by provoking a huge up-front allocation.
	nodes := make([]*xmltree.Node, 0, min(nNodes, 4096))
	for i := 0; i < nNodes; i++ {
		if l, err = line(); err != nil {
			return nil, err
		}
		n, err := decodeNode(l, i, nodes)
		if err != nil {
			return nil, snapErrf("%v", err)
		}
		nodes = append(nodes, n)
	}
	// Post-order emission puts the root last.
	s.Tree = &xmltree.Tree{Root: nodes[nNodes-1]}
	reach := make(map[*xmltree.Node]bool, nNodes)
	s.Tree.WalkShared(func(n *xmltree.Node) bool {
		reach[n] = true
		return true
	})

	if l, err = line(); err != nil {
		return nil, err
	}
	tk = newTok(l)
	if err := tk.literal("pending"); err != nil {
		return nil, err
	}
	nPend, err := tk.integer()
	if err != nil {
		return nil, err
	}
	if nPend < 0 {
		return nil, snapErrf("negative pending count")
	}
	s.Pending = make([]pt.PendingConfig, 0, min(nPend, 4096))
	for i := 0; i < nPend; i++ {
		if l, err = line(); err != nil {
			return nil, err
		}
		p, err := decodePending(l, i, nodes, reach)
		if err != nil {
			return nil, snapErrf("%v", err)
		}
		s.Pending = append(s.Pending, p)
	}

	// Payload complete: the next line commits to its checksum.
	want := hex.EncodeToString(h.Sum(nil))
	if l, err = rawLine(); err != nil {
		return nil, err
	}
	tk = newTok(l)
	if err := tk.literal("sum"); err != nil {
		return nil, snapErrf("missing checksum line: %v", err)
	}
	got, err := tk.bare()
	if err != nil {
		return nil, snapErrf("missing checksum: %v", err)
	}
	if got != want {
		return nil, snapErrf("payload checksum mismatch (file says %.12s…, content hashes to %.12s…)", got, want)
	}
	if l, err = rawLine(); err != nil {
		return nil, err
	}
	if l != "end" {
		return nil, snapErrf("snapshot missing end marker (got %q)", l)
	}
	return s, nil
}

func decodeNode(l string, i int, defined []*xmltree.Node) (*xmltree.Node, error) {
	tk := newTok(l)
	if err := tk.literal("n"); err != nil {
		return nil, fmt.Errorf("node %d: %w", i, err)
	}
	n := &xmltree.Node{}
	var err error
	if n.Tag, err = tk.quoted(); err != nil {
		return nil, fmt.Errorf("node %d tag: %w", i, err)
	}
	if n.State, err = tk.quoted(); err != nil {
		return nil, fmt.Errorf("node %d state: %w", i, err)
	}
	if n.Text, err = tk.quoted(); err != nil {
		return nil, fmt.Errorf("node %d text: %w", i, err)
	}
	arity, err := tk.integer()
	if err != nil {
		return nil, fmt.Errorf("node %d arity: %w", i, err)
	}
	nTuples, err := tk.integer()
	if err != nil {
		return nil, fmt.Errorf("node %d tuple count: %w", i, err)
	}
	if arity >= 0 {
		if nTuples < 0 {
			return nil, fmt.Errorf("node %d: negative tuple count", i)
		}
		// Every stored value is a quoted token of at least two bytes plus
		// its separator, so a register claiming more values than the line
		// could physically hold is corrupt — rejected before any
		// per-tuple allocation a flipped count could inflate.
		if nTuples > 0 && (arity > len(l) || nTuples > len(l) || 3*arity*nTuples > len(l)) {
			return nil, fmt.Errorf("node %d: register claims %d×%d values, line holds only %d bytes", i, nTuples, arity, len(l))
		}
		n.Reg = relation.New(arity)
		for t := 0; t < nTuples; t++ {
			tup := make(value.Tuple, arity)
			for c := 0; c < arity; c++ {
				v, err := tk.quoted()
				if err != nil {
					return nil, fmt.Errorf("node %d tuple %d: %w", i, t, err)
				}
				tup[c] = value.V(v)
			}
			n.Reg.Add(tup)
		}
	}
	nKids, err := tk.integer()
	if err != nil {
		return nil, fmt.Errorf("node %d child count: %w", i, err)
	}
	for k := 0; k < nKids; k++ {
		id, err := tk.integer()
		if err != nil {
			return nil, fmt.Errorf("node %d child %d: %w", i, k, err)
		}
		// Children must already be defined: this is what rules out
		// cycles and forward references in one check.
		if id < 0 || id >= len(defined) {
			return nil, fmt.Errorf("node %d references undefined node %d (only %d defined so far)", i, id, len(defined))
		}
		n.Children = append(n.Children, defined[id])
	}
	if err := tk.end(); err != nil {
		return nil, fmt.Errorf("node %d: %w", i, err)
	}
	return n, nil
}

func decodePending(l string, i int, nodes []*xmltree.Node, reach map[*xmltree.Node]bool) (pt.PendingConfig, error) {
	var p pt.PendingConfig
	tk := newTok(l)
	if err := tk.literal("p"); err != nil {
		return p, fmt.Errorf("pending %d: %w", i, err)
	}
	id, err := tk.integer()
	if err != nil {
		return p, fmt.Errorf("pending %d node id: %w", i, err)
	}
	if id < 0 || id >= len(nodes) {
		return p, fmt.Errorf("pending %d references undefined node %d", i, id)
	}
	p.Node = nodes[id]
	if !reach[p.Node] {
		return p, fmt.Errorf("pending %d: node %d is not reachable from the root", i, id)
	}
	if p.Node.State == "" {
		return p, fmt.Errorf("pending %d: node %d (%s) is already finalized", i, id, p.Node.Tag)
	}
	if p.Node.Reg == nil {
		return p, fmt.Errorf("pending %d: node %d has no register", i, id)
	}
	if p.Depth, err = tk.integer(); err != nil {
		return p, fmt.Errorf("pending %d depth: %w", i, err)
	}
	if p.Depth < 1 {
		return p, fmt.Errorf("pending %d: depth %d < 1", i, p.Depth)
	}
	nAnc, err := tk.integer()
	if err != nil {
		return p, fmt.Errorf("pending %d ancestor count: %w", i, err)
	}
	if nAnc < 0 {
		return p, fmt.Errorf("pending %d: negative ancestor count", i)
	}
	for a := 0; a < nAnc; a++ {
		key, err := tk.quoted()
		if err != nil {
			return p, fmt.Errorf("pending %d ancestor %d: %w", i, a, err)
		}
		p.Ancestors = append(p.Ancestors, key)
	}
	if err := tk.end(); err != nil {
		return p, fmt.Errorf("pending %d: %w", i, err)
	}
	return p, nil
}

// tok consumes one space-separated line of bare and Quote-d tokens.
type tok struct{ rest string }

func newTok(l string) *tok { return &tok{rest: l} }

func (t *tok) skip() { t.rest = strings.TrimLeft(t.rest, " ") }

func (t *tok) bare() (string, error) {
	t.skip()
	if t.rest == "" {
		return "", snapErrf("unexpected end of line")
	}
	if i := strings.IndexByte(t.rest, ' '); i >= 0 {
		w := t.rest[:i]
		t.rest = t.rest[i:]
		return w, nil
	}
	w := t.rest
	t.rest = ""
	return w, nil
}

func (t *tok) quoted() (string, error) {
	t.skip()
	q, err := strconv.QuotedPrefix(t.rest)
	if err != nil {
		return "", snapErrf("malformed quoted token at %q", t.rest)
	}
	t.rest = t.rest[len(q):]
	s, err := strconv.Unquote(q)
	if err != nil {
		return "", snapErrf("malformed quoted token %q", q)
	}
	return s, nil
}

func (t *tok) integer() (int, error) {
	w, err := t.bare()
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(w)
	if err != nil {
		return 0, snapErrf("bad integer %q", w)
	}
	return n, nil
}

func (t *tok) literal(want string) error {
	w, err := t.bare()
	if err != nil {
		return err
	}
	if w != want {
		return snapErrf("got token %q, want %q", w, want)
	}
	return nil
}

func (t *tok) end() error {
	t.skip()
	if t.rest != "" {
		return snapErrf("trailing garbage %q", t.rest)
	}
	return nil
}
