package logic

import (
	"testing"
)

func TestFreeVars(t *testing.T) {
	x, y, z := Var("x"), Var("y"), Var("z")
	f := Ex([]Var{y}, Conj(
		R("E", x, y),
		R("E", y, z),
	))
	fv := FreeVars(f)
	if len(fv) != 2 || fv[0] != "x" || fv[1] != "z" {
		t.Fatalf("FreeVars = %v", fv)
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	x := Var("x")
	// ∃x E(x,x) has no free variables even though x appears.
	f := Ex([]Var{x}, R("E", x, x))
	if fv := FreeVars(f); len(fv) != 0 {
		t.Fatalf("FreeVars = %v, want none", fv)
	}
	// x free outside, bound inside: E(x) ∧ ∃x F(x) — x is free.
	g := Conj(R("E", x), Ex([]Var{x}, R("F", x)))
	if fv := FreeVars(g); len(fv) != 1 || fv[0] != "x" {
		t.Fatalf("FreeVars = %v, want [x]", fv)
	}
}

func TestFixpointFreeVars(t *testing.T) {
	x, y, u, v := Var("x"), Var("y"), Var("u"), Var("v")
	// [µ⁺_{S,(u,v)} E(u,v) ∨ ∃w(S(u,w) ∧ E(w,v))](x,y): free vars x,y.
	w := Var("w")
	body := Disj(R("E", u, v), Ex([]Var{w}, Conj(R("S", u, w), R("E", w, v))))
	f := &Fixpoint{Rel: "S", Vars: []Var{u, v}, Body: body, Args: []Term{x, y}}
	fv := FreeVars(f)
	if len(fv) != 2 || fv[0] != "x" || fv[1] != "y" {
		t.Fatalf("FreeVars = %v", fv)
	}
}

func TestConstants(t *testing.T) {
	x := Var("x")
	f := Conj(R("R", x, Const("CS")), NeqT(x, Const("0")))
	cs := Constants(f)
	if len(cs) != 2 || cs[0] != "0" || cs[1] != "CS" {
		t.Fatalf("Constants = %v", cs)
	}
}

func TestRelations(t *testing.T) {
	x := Var("x")
	f := Conj(R("A", x), &Not{F: R("B", x)})
	rs := Relations(f)
	if len(rs) != 2 || rs[0] != "A" || rs[1] != "B" {
		t.Fatalf("Relations = %v", rs)
	}
	// Fixpoint recursion relation is locally bound, not reported.
	fp := &Fixpoint{Rel: "S", Vars: []Var{x}, Body: Disj(R("E", x), R("S", x)), Args: []Term{x}}
	rs = Relations(fp)
	if len(rs) != 1 || rs[0] != "E" {
		t.Fatalf("Relations(fixpoint) = %v", rs)
	}
}

func TestClassify(t *testing.T) {
	x, y := Var("x"), Var("y")
	cases := []struct {
		f    Formula
		want Logic
	}{
		{R("E", x, y), CQ},
		{Conj(R("E", x, y), NeqT(x, y)), CQ},
		{Ex([]Var{y}, R("E", x, y)), CQ},
		{Disj(R("E", x, y), R("E", y, x)), FO},
		{&Not{F: R("E", x, y)}, FO},
		{All([]Var{y}, R("E", x, y)), FO},
		{&Fixpoint{Rel: "S", Vars: []Var{x}, Body: R("E", x), Args: []Term{x}}, IFP},
		{True, CQ},
	}
	for _, c := range cases {
		if got := Classify(c.f); got != c.want {
			t.Errorf("Classify(%s) = %s, want %s", c.f, got, c.want)
		}
	}
}

func TestLogicIncludes(t *testing.T) {
	if !IFP.Includes(CQ) || !IFP.Includes(FO) || !FO.Includes(CQ) {
		t.Error("inclusion chain broken")
	}
	if CQ.Includes(FO) || FO.Includes(IFP) {
		t.Error("inclusion should be strict")
	}
}

func TestSubstitute(t *testing.T) {
	x, y := Var("x"), Var("y")
	f := Conj(R("E", x, y), EqT(x, Const("c")))
	g := Substitute(f, map[Var]Term{x: Const("1")})
	want := "(E('1',y) & '1'='c')"
	if g.String() != want {
		t.Fatalf("Substitute = %s, want %s", g, want)
	}
	// Bound variables are not substituted.
	h := Ex([]Var{x}, R("E", x, y))
	hs := Substitute(h, map[Var]Term{x: Const("1"), y: Const("2")})
	if hs.String() != "exists x. E(x,'2')" {
		t.Fatalf("Substitute under binder = %s", hs)
	}
}

func TestReplaceAtom(t *testing.T) {
	x, y := Var("x"), Var("y")
	f := Ex([]Var{y}, Conj(R("Reg", y), R("E", y, x)))
	g := ReplaceAtom(f, "Reg", func(args []Term) Formula {
		return R("Q", args[0], Const("k"))
	})
	if g.String() != "exists y. (Q(y,'k') & E(y,x))" {
		t.Fatalf("ReplaceAtom = %s", g)
	}
}

func TestRenameRel(t *testing.T) {
	x := Var("x")
	f := Conj(R("A", x), R("B", x))
	g := RenameRel(f, "A", "C")
	if g.String() != "(C(x) & B(x))" {
		t.Fatalf("RenameRel = %s", g)
	}
	// Shadowed fixpoint relation is not renamed inside its own body.
	fp := &Fixpoint{Rel: "A", Vars: []Var{x}, Body: R("A", x), Args: []Term{x}}
	if gp := RenameRel(fp, "A", "C"); gp.String() != fp.String() {
		t.Fatalf("RenameRel should not rename shadowed fixpoint: %s", gp)
	}
}

func TestConjDisjEmpty(t *testing.T) {
	if Conj() != True {
		t.Error("empty Conj should be True")
	}
	if Disj() != False {
		t.Error("empty Disj should be False")
	}
	x := Var("x")
	single := R("E", x)
	if Conj(single) != Formula(single) || Disj(single) != Formula(single) {
		t.Error("singleton Conj/Disj should be identity")
	}
}

func TestQueryValidate(t *testing.T) {
	x, y := Var("x"), Var("y")
	if _, err := NewQuery([]Var{x}, []Var{x}, R("E", x)); err == nil {
		t.Error("overlapping x̄,ȳ should fail")
	}
	if _, err := NewQuery([]Var{x}, nil, R("E", x, y)); err == nil {
		t.Error("uncovered free variable should fail")
	}
	q, err := NewQuery([]Var{x}, []Var{y}, R("E", x, y))
	if err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 2 || q.TupleStore() {
		t.Error("arity/store classification wrong")
	}
	q2 := MustQuery([]Var{x}, nil, Ex([]Var{y}, R("E", x, y)))
	if !q2.TupleStore() {
		t.Error("|ȳ|=0 should be a tuple store")
	}
}

func TestQueryHead(t *testing.T) {
	x, y, z := Var("x"), Var("y"), Var("z")
	q := MustQuery([]Var{x, y}, []Var{z}, R("E", x, y, z))
	h := q.Head()
	if len(h) != 3 || h[0] != x || h[1] != y || h[2] != z {
		t.Fatalf("Head = %v", h)
	}
}

func TestStringRendering(t *testing.T) {
	x, y := Var("x"), Var("y")
	f := All([]Var{y}, Disj(&Not{F: R("E", x, y)}, EqT(x, y)))
	want := "forall y. (!E(x,y) | x=y)"
	if f.String() != want {
		t.Fatalf("String = %s, want %s", f, want)
	}
}

func TestEqualish(t *testing.T) {
	x := Var("x")
	if !Equalish(R("E", x), R("E", x)) {
		t.Error("identical formulas should be Equalish")
	}
	if Equalish(R("E", x), R("F", x)) {
		t.Error("different relations should not be Equalish")
	}
}
