package logic

import (
	"fmt"
	"strings"
)

// Query is an embedded transducer query φ(x̄;ȳ): a formula whose free
// variables are split into grouping variables x̄ and content variables ȳ.
// When the query runs at a node, its result is grouped by the distinct
// x̄-values; each group spawns one child whose register holds
// {d̄}×{ē | φ(d̄,ē)}. With |ȳ|=0 the child registers are single tuples
// (tuple stores); with |x̄|=0 the whole result lands in one child.
type Query struct {
	GroupVars   []Var
	ContentVars []Var
	F           Formula
}

// NewQuery builds and validates a query φ(x̄;ȳ).
func NewQuery(group, content []Var, f Formula) (*Query, error) {
	q := &Query{GroupVars: group, ContentVars: content, F: f}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustQuery is NewQuery that panics on error; for literals in tests,
// examples and generated constructions.
func MustQuery(group, content []Var, f Formula) *Query {
	q, err := NewQuery(group, content, f)
	if err != nil {
		panic(err)
	}
	return q
}

// Validate checks that x̄ and ȳ are disjoint, duplicate-free, and cover
// the free variables of the formula.
func (q *Query) Validate() error {
	seen := make(map[Var]int)
	for _, v := range q.GroupVars {
		seen[v]++
	}
	for _, v := range q.ContentVars {
		seen[v]++
	}
	for v, n := range seen {
		if n > 1 {
			return fmt.Errorf("query: variable %s appears %d times across x̄;ȳ", v, n)
		}
	}
	for _, v := range FreeVars(q.F) {
		if _, ok := seen[v]; !ok {
			return fmt.Errorf("query: free variable %s of %s not listed in x̄;ȳ", v, q.F)
		}
	}
	return nil
}

// Arity is the width of the child registers this query produces:
// |x̄| + |ȳ|.
func (q *Query) Arity() int { return len(q.GroupVars) + len(q.ContentVars) }

// Head returns x̄·ȳ, the output column order of the query.
func (q *Query) Head() []Var {
	out := make([]Var, 0, q.Arity())
	out = append(out, q.GroupVars...)
	out = append(out, q.ContentVars...)
	return out
}

// TupleStore reports whether the query produces tuple registers
// (|ȳ| = 0, so grouping is by the entire tuple).
func (q *Query) TupleStore() bool { return len(q.ContentVars) == 0 }

// Logic returns the smallest fragment containing the query's formula.
func (q *Query) Logic() Logic { return Classify(q.F) }

// String renders the query as φ(x̄;ȳ) = formula.
func (q *Query) String() string {
	return fmt.Sprintf("phi(%s;%s) = %s",
		strings.Join(varStrings(q.GroupVars), ","),
		strings.Join(varStrings(q.ContentVars), ","),
		q.F)
}

func varStrings(vs []Var) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(v)
	}
	return out
}
