// Package logic defines a single abstract syntax for the three query
// logics of the paper — conjunctive queries (CQ), first-order logic (FO)
// and inflationary fixpoint logic (IFP), all with '=' and '≠' — together
// with fragment classification, free-variable analysis and substitution.
//
// Register atoms are ordinary relation atoms whose name matches the
// register relation bound by the evaluator (conventionally "Reg" or
// "Reg<tag>"); the evaluator resolves names against the database instance
// extended with the current node's register.
package logic

import (
	"fmt"
	"sort"
	"strings"

	"ptx/internal/value"
)

// Logic identifies a query-language fragment.
type Logic int

// The three logics, ordered by inclusion: CQ ⊂ FO ⊂ IFP.
const (
	CQ Logic = iota
	FO
	IFP
)

func (l Logic) String() string {
	switch l {
	case CQ:
		return "CQ"
	case FO:
		return "FO"
	case IFP:
		return "IFP"
	}
	return fmt.Sprintf("Logic(%d)", int(l))
}

// Includes reports whether fragment l contains fragment m.
func (l Logic) Includes(m Logic) bool { return l >= m }

// Term is a variable or a constant.
type Term interface {
	isTerm()
	String() string
}

// Var is a first-order variable.
type Var string

func (Var) isTerm()          {}
func (v Var) String() string { return string(v) }

// Const is a data-value constant.
type Const value.V

func (Const) isTerm()          {}
func (c Const) String() string { return "'" + string(c) + "'" }

// Vars is a convenience constructor for a variable list.
func Vars(names ...string) []Var {
	vs := make([]Var, len(names))
	for i, n := range names {
		vs[i] = Var(n)
	}
	return vs
}

// TermVars converts a variable list to a term list.
func TermVars(vs []Var) []Term {
	ts := make([]Term, len(vs))
	for i, v := range vs {
		ts[i] = v
	}
	return ts
}

// Formula is a node of the shared AST.
type Formula interface {
	isFormula()
	String() string
}

// Atom is a relation atom R(t1,…,tk). The relation may be a source
// relation, a register relation, or (inside a fixpoint body) the
// fixpoint's recursion relation.
type Atom struct {
	Rel  string
	Args []Term
}

// Eq asserts term equality.
type Eq struct{ L, R Term }

// Neq asserts term inequality.
type Neq struct{ L, R Term }

// And is binary conjunction.
type And struct{ L, R Formula }

// Or is binary disjunction (FO and above).
type Or struct{ L, R Formula }

// Not is negation (FO and above).
type Not struct{ F Formula }

// Exists is existential quantification over Bound.
type Exists struct {
	Bound []Var
	F     Formula
}

// Forall is universal quantification over Bound (FO and above).
type Forall struct {
	Bound []Var
	F     Formula
}

// Fixpoint is the inflationary fixpoint [µ⁺_{S,x̄} φ(S,x̄)](t̄) of IFP:
// Rel names the recursion relation S, Vars are x̄ (binding the body),
// Body is φ, and Args are the terms t̄ the fixpoint is applied to.
type Fixpoint struct {
	Rel  string
	Vars []Var
	Body Formula
	Args []Term
}

// Truth is the boolean constant true (⊤) or false (⊥). It is definable
// in CQ (x='c'∧x≠'c' and its negation via empty conjunction) but having
// it explicit keeps generated formulas small.
type Truth struct{ B bool }

func (*Atom) isFormula()     {}
func (*Eq) isFormula()       {}
func (*Neq) isFormula()      {}
func (*And) isFormula()      {}
func (*Or) isFormula()       {}
func (*Not) isFormula()      {}
func (*Exists) isFormula()   {}
func (*Forall) isFormula()   {}
func (*Fixpoint) isFormula() {}
func (*Truth) isFormula()    {}

// True and False are the shared truth constants.
var (
	True  = &Truth{B: true}
	False = &Truth{B: false}
)

// R builds an atom from a relation name and terms.
func R(rel string, args ...Term) *Atom { return &Atom{Rel: rel, Args: args} }

// EqT and NeqT build (in)equalities.
func EqT(l, r Term) *Eq   { return &Eq{L: l, R: r} }
func NeqT(l, r Term) *Neq { return &Neq{L: l, R: r} }

// Conj folds a list of formulas into a right-nested conjunction;
// the empty conjunction is True.
func Conj(fs ...Formula) Formula {
	switch len(fs) {
	case 0:
		return True
	case 1:
		return fs[0]
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = &And{L: fs[i], R: out}
	}
	return out
}

// Disj folds a list of formulas into a right-nested disjunction;
// the empty disjunction is False.
func Disj(fs ...Formula) Formula {
	switch len(fs) {
	case 0:
		return False
	case 1:
		return fs[0]
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = &Or{L: fs[i], R: out}
	}
	return out
}

// Ex wraps f in ∃vars unless vars is empty.
func Ex(vars []Var, f Formula) Formula {
	if len(vars) == 0 {
		return f
	}
	return &Exists{Bound: vars, F: f}
}

// All wraps f in ∀vars unless vars is empty.
func All(vars []Var, f Formula) Formula {
	if len(vars) == 0 {
		return f
	}
	return &Forall{Bound: vars, F: f}
}

func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

func (e *Eq) String() string  { return e.L.String() + "=" + e.R.String() }
func (n *Neq) String() string { return n.L.String() + "!=" + n.R.String() }
func (a *And) String() string { return "(" + a.L.String() + " & " + a.R.String() + ")" }
func (o *Or) String() string  { return "(" + o.L.String() + " | " + o.R.String() + ")" }
func (n *Not) String() string { return "!" + n.F.String() }

func varList(vs []Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return strings.Join(parts, ",")
}

func (e *Exists) String() string { return "exists " + varList(e.Bound) + ". " + e.F.String() }
func (f *Forall) String() string { return "forall " + varList(f.Bound) + ". " + f.F.String() }

func (f *Fixpoint) String() string {
	args := make([]string, len(f.Args))
	for i, t := range f.Args {
		args[i] = t.String()
	}
	return fmt.Sprintf("[ifp %s(%s). %s](%s)", f.Rel, varList(f.Vars), f.Body.String(), strings.Join(args, ","))
}

func (t *Truth) String() string {
	if t.B {
		return "true"
	}
	return "false"
}

// FreeVars returns the free variables of f in sorted order.
func FreeVars(f Formula) []Var {
	set := make(map[Var]bool)
	collectFree(f, make(map[Var]bool), set)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectTermFree(t Term, bound, free map[Var]bool) {
	if v, ok := t.(Var); ok && !bound[v] {
		free[v] = true
	}
}

func collectFree(f Formula, bound, free map[Var]bool) {
	switch g := f.(type) {
	case *Atom:
		for _, t := range g.Args {
			collectTermFree(t, bound, free)
		}
	case *Eq:
		collectTermFree(g.L, bound, free)
		collectTermFree(g.R, bound, free)
	case *Neq:
		collectTermFree(g.L, bound, free)
		collectTermFree(g.R, bound, free)
	case *And:
		collectFree(g.L, bound, free)
		collectFree(g.R, bound, free)
	case *Or:
		collectFree(g.L, bound, free)
		collectFree(g.R, bound, free)
	case *Not:
		collectFree(g.F, bound, free)
	case *Exists:
		inner := cloneBound(bound, g.Bound)
		collectFree(g.F, inner, free)
	case *Forall:
		inner := cloneBound(bound, g.Bound)
		collectFree(g.F, inner, free)
	case *Fixpoint:
		// The fixpoint variables bind the body; the applied terms are free.
		inner := cloneBound(bound, g.Vars)
		collectFree(g.Body, inner, free)
		for _, t := range g.Args {
			collectTermFree(t, bound, free)
		}
	case *Truth:
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

func cloneBound(bound map[Var]bool, extra []Var) map[Var]bool {
	inner := make(map[Var]bool, len(bound)+len(extra))
	for v := range bound {
		inner[v] = true
	}
	for _, v := range extra {
		inner[v] = true
	}
	return inner
}

// Constants returns the sorted set of constants occurring in f.
func Constants(f Formula) []value.V {
	set := make(map[value.V]bool)
	collectConsts(f, set)
	out := make([]value.V, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	value.SortValues(out)
	return out
}

func collectTermConst(t Term, set map[value.V]bool) {
	if c, ok := t.(Const); ok {
		set[value.V(c)] = true
	}
}

func collectConsts(f Formula, set map[value.V]bool) {
	switch g := f.(type) {
	case *Atom:
		for _, t := range g.Args {
			collectTermConst(t, set)
		}
	case *Eq:
		collectTermConst(g.L, set)
		collectTermConst(g.R, set)
	case *Neq:
		collectTermConst(g.L, set)
		collectTermConst(g.R, set)
	case *And:
		collectConsts(g.L, set)
		collectConsts(g.R, set)
	case *Or:
		collectConsts(g.L, set)
		collectConsts(g.R, set)
	case *Not:
		collectConsts(g.F, set)
	case *Exists:
		collectConsts(g.F, set)
	case *Forall:
		collectConsts(g.F, set)
	case *Fixpoint:
		collectConsts(g.Body, set)
		for _, t := range g.Args {
			collectTermConst(t, set)
		}
	case *Truth:
	}
}

// Relations returns the sorted set of relation names referenced by f,
// excluding fixpoint recursion relations (which are locally bound).
func Relations(f Formula) []string {
	set := make(map[string]bool)
	collectRels(f, make(map[string]bool), set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func collectRels(f Formula, local, set map[string]bool) {
	switch g := f.(type) {
	case *Atom:
		if !local[g.Rel] {
			set[g.Rel] = true
		}
	case *And:
		collectRels(g.L, local, set)
		collectRels(g.R, local, set)
	case *Or:
		collectRels(g.L, local, set)
		collectRels(g.R, local, set)
	case *Not:
		collectRels(g.F, local, set)
	case *Exists:
		collectRels(g.F, local, set)
	case *Forall:
		collectRels(g.F, local, set)
	case *Fixpoint:
		inner := make(map[string]bool, len(local)+1)
		for n := range local {
			inner[n] = true
		}
		inner[g.Rel] = true
		collectRels(g.Body, inner, set)
	}
}

// Classify returns the smallest fragment containing f: CQ if f uses only
// atoms, (in)equalities, conjunction and ∃; FO if it additionally uses
// ∨, ¬ or ∀; IFP if it uses a fixpoint.
func Classify(f Formula) Logic {
	switch g := f.(type) {
	case *Atom, *Eq, *Neq, *Truth:
		return CQ
	case *And:
		return maxLogic(Classify(g.L), Classify(g.R))
	case *Exists:
		return Classify(g.F)
	case *Or:
		return maxLogic(FO, maxLogic(Classify(g.L), Classify(g.R)))
	case *Not:
		return maxLogic(FO, Classify(g.F))
	case *Forall:
		return maxLogic(FO, Classify(g.F))
	case *Fixpoint:
		return IFP
	}
	panic(fmt.Sprintf("logic: unknown formula %T", f))
}

func maxLogic(a, b Logic) Logic {
	if a > b {
		return a
	}
	return b
}

// Substitute replaces free occurrences of variables per subst, renaming
// nothing (callers must avoid capture; generated formulas use fresh
// variable names).
func Substitute(f Formula, subst map[Var]Term) Formula {
	if len(subst) == 0 {
		return f
	}
	return subFormula(f, subst)
}

func subTerm(t Term, subst map[Var]Term) Term {
	if v, ok := t.(Var); ok {
		if r, ok := subst[v]; ok {
			return r
		}
	}
	return t
}

func subTerms(ts []Term, subst map[Var]Term) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = subTerm(t, subst)
	}
	return out
}

func dropBound(subst map[Var]Term, bound []Var) map[Var]Term {
	any := false
	for _, v := range bound {
		if _, ok := subst[v]; ok {
			any = true
			break
		}
	}
	if !any {
		return subst
	}
	inner := make(map[Var]Term, len(subst))
	for k, t := range subst {
		inner[k] = t
	}
	for _, v := range bound {
		delete(inner, v)
	}
	return inner
}

func subFormula(f Formula, subst map[Var]Term) Formula {
	switch g := f.(type) {
	case *Atom:
		return &Atom{Rel: g.Rel, Args: subTerms(g.Args, subst)}
	case *Eq:
		return &Eq{L: subTerm(g.L, subst), R: subTerm(g.R, subst)}
	case *Neq:
		return &Neq{L: subTerm(g.L, subst), R: subTerm(g.R, subst)}
	case *And:
		return &And{L: subFormula(g.L, subst), R: subFormula(g.R, subst)}
	case *Or:
		return &Or{L: subFormula(g.L, subst), R: subFormula(g.R, subst)}
	case *Not:
		return &Not{F: subFormula(g.F, subst)}
	case *Exists:
		return &Exists{Bound: g.Bound, F: subFormula(g.F, dropBound(subst, g.Bound))}
	case *Forall:
		return &Forall{Bound: g.Bound, F: subFormula(g.F, dropBound(subst, g.Bound))}
	case *Fixpoint:
		return &Fixpoint{
			Rel:  g.Rel,
			Vars: g.Vars,
			Body: subFormula(g.Body, dropBound(subst, g.Vars)),
			Args: subTerms(g.Args, subst),
		}
	case *Truth:
		return g
	}
	panic(fmt.Sprintf("logic: unknown formula %T", f))
}

// RenameRel rewrites every atom over relation old to use relation new
// (used when composing register queries along a path).
func RenameRel(f Formula, old, new string) Formula {
	switch g := f.(type) {
	case *Atom:
		if g.Rel == old {
			return &Atom{Rel: new, Args: g.Args}
		}
		return g
	case *And:
		return &And{L: RenameRel(g.L, old, new), R: RenameRel(g.R, old, new)}
	case *Or:
		return &Or{L: RenameRel(g.L, old, new), R: RenameRel(g.R, old, new)}
	case *Not:
		return &Not{F: RenameRel(g.F, old, new)}
	case *Exists:
		return &Exists{Bound: g.Bound, F: RenameRel(g.F, old, new)}
	case *Forall:
		return &Forall{Bound: g.Bound, F: RenameRel(g.F, old, new)}
	case *Fixpoint:
		if g.Rel == old {
			// old is shadowed inside the body.
			return g
		}
		return &Fixpoint{Rel: g.Rel, Vars: g.Vars, Body: RenameRel(g.Body, old, new), Args: g.Args}
	default:
		return g
	}
}

// ReplaceAtom rewrites every atom over relation rel by the formula
// produced by build, which receives the atom's argument terms. It is
// the workhorse of query composition: substituting a child query for a
// register atom.
func ReplaceAtom(f Formula, rel string, build func(args []Term) Formula) Formula {
	switch g := f.(type) {
	case *Atom:
		if g.Rel == rel {
			return build(g.Args)
		}
		return g
	case *And:
		return &And{L: ReplaceAtom(g.L, rel, build), R: ReplaceAtom(g.R, rel, build)}
	case *Or:
		return &Or{L: ReplaceAtom(g.L, rel, build), R: ReplaceAtom(g.R, rel, build)}
	case *Not:
		return &Not{F: ReplaceAtom(g.F, rel, build)}
	case *Exists:
		return &Exists{Bound: g.Bound, F: ReplaceAtom(g.F, rel, build)}
	case *Forall:
		return &Forall{Bound: g.Bound, F: ReplaceAtom(g.F, rel, build)}
	case *Fixpoint:
		if g.Rel == rel {
			return g
		}
		return &Fixpoint{Rel: g.Rel, Vars: g.Vars, Body: ReplaceAtom(g.Body, rel, build), Args: g.Args}
	default:
		return g
	}
}

// Equalish reports structural equality of two formulas (same shape,
// relation names, terms and binder lists).
func Equalish(a, b Formula) bool { return a.String() == b.String() }

// RenameAllVars appends suffix to every variable of f, bound and free
// alike. The renaming is injective, hence capture-free; it is used to
// create fresh copies of a formula when substituting it for several
// atom occurrences.
func RenameAllVars(f Formula, suffix string) Formula {
	switch g := f.(type) {
	case *Atom:
		return &Atom{Rel: g.Rel, Args: renameTerms(g.Args, suffix)}
	case *Eq:
		return &Eq{L: renameTerm(g.L, suffix), R: renameTerm(g.R, suffix)}
	case *Neq:
		return &Neq{L: renameTerm(g.L, suffix), R: renameTerm(g.R, suffix)}
	case *And:
		return &And{L: RenameAllVars(g.L, suffix), R: RenameAllVars(g.R, suffix)}
	case *Or:
		return &Or{L: RenameAllVars(g.L, suffix), R: RenameAllVars(g.R, suffix)}
	case *Not:
		return &Not{F: RenameAllVars(g.F, suffix)}
	case *Exists:
		return &Exists{Bound: renameVars(g.Bound, suffix), F: RenameAllVars(g.F, suffix)}
	case *Forall:
		return &Forall{Bound: renameVars(g.Bound, suffix), F: RenameAllVars(g.F, suffix)}
	case *Fixpoint:
		return &Fixpoint{Rel: g.Rel, Vars: renameVars(g.Vars, suffix),
			Body: RenameAllVars(g.Body, suffix), Args: renameTerms(g.Args, suffix)}
	default:
		return f
	}
}

func renameTerm(t Term, suffix string) Term {
	if v, ok := t.(Var); ok {
		return Var(string(v) + suffix)
	}
	return t
}

func renameTerms(ts []Term, suffix string) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = renameTerm(t, suffix)
	}
	return out
}

func renameVars(vs []Var, suffix string) []Var {
	out := make([]Var, len(vs))
	for i, v := range vs {
		out[i] = Var(string(v) + suffix)
	}
	return out
}
