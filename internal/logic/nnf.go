package logic

// NNF converts a formula to negation normal form: negation is pushed
// through ∧ ∨ ¬ ∃ ∀ and (in)equalities, stopping at relation atoms and
// fixpoints. Evaluating the NNF avoids complementing large
// intermediate relations: a ¬ in front of an 8-variable conjunction
// costs |adom|⁸ as a complement but only a small anti-join once pushed
// inward. Both the optimized interpreter (eval) and the compiled-plan
// layer (plan) compile from NNF.
func NNF(f Formula) Formula {
	switch g := f.(type) {
	case *Not:
		return Negate(g.F)
	case *And:
		return &And{L: NNF(g.L), R: NNF(g.R)}
	case *Or:
		return &Or{L: NNF(g.L), R: NNF(g.R)}
	case *Exists:
		return &Exists{Bound: g.Bound, F: NNF(g.F)}
	case *Forall:
		return &Forall{Bound: g.Bound, F: NNF(g.F)}
	default:
		return f
	}
}

// Negate returns an NNF formula equivalent to ¬f.
func Negate(f Formula) Formula {
	switch g := f.(type) {
	case *Truth:
		return &Truth{B: !g.B}
	case *Eq:
		return &Neq{L: g.L, R: g.R}
	case *Neq:
		return &Eq{L: g.L, R: g.R}
	case *Not:
		return NNF(g.F)
	case *And:
		return &Or{L: Negate(g.L), R: Negate(g.R)}
	case *Or:
		return &And{L: Negate(g.L), R: Negate(g.R)}
	case *Exists:
		return &Forall{Bound: g.Bound, F: Negate(g.F)}
	case *Forall:
		return &Exists{Bound: g.Bound, F: Negate(g.F)}
	default:
		// Atoms and fixpoints: negation stays in front.
		return &Not{F: f}
	}
}

// FlattenConj decomposes nested conjunctions into a list.
func FlattenConj(f Formula, out *[]Formula) {
	if g, ok := f.(*And); ok {
		FlattenConj(g.L, out)
		FlattenConj(g.R, out)
		return
	}
	*out = append(*out, f)
}
