// Package cluster is the multi-node tier over the serve package: a
// coordinator consistent-hash routes publish requests across worker
// nodes, health-probes them, fails over to ring successors when a node
// dies, and hands in-flight supervised runs to their new owner through
// the shared checkpoint store (see serve.Config.Store), with ownership
// epochs fencing out zombie writers. The design target is the same as
// the single-node server's: every request ends in golden bytes or a
// typed JSON error — a node kill mid-run costs a resume, never a
// corrupt or silently-restarted answer.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Each member owns
// VNodes points on a 64-bit circle; a key routes to the first point at
// or after its own hash, and the PREFERENCE LIST for a key is the
// sequence of distinct members encountered walking clockwise from
// there — the failover order. Adding or removing one member moves only
// the keys that hashed to its points, so a node kill does not reshuffle
// the whole cluster's cache and checkpoint locality.
//
// Ring is not goroutine-safe; the Coordinator serializes access.
type Ring struct {
	vnodes int
	points []point // sorted by hash
	member map[string]bool
}

type point struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with vnodes points per member
// (default 64 when vnodes <= 0 — enough that a 3-node ring splits keys
// within a few percent of evenly).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, member: make(map[string]bool)}
}

// Add inserts a member; adding an existing member is a no-op.
func (r *Ring) Add(node string) {
	if r.member[node] {
		return
	}
	r.member[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash64(fmt.Sprintf("%s#%d", node, i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its points; unknown members are a no-op.
func (r *Ring) Remove(node string) {
	if !r.member[node] {
		return
	}
	delete(r.member, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Prefer returns the preference list for key: up to n distinct members
// in clockwise order starting at key's ring position. The first entry
// is the key's owner; the rest are its failover successors.
func (r *Ring) Prefer(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Owner returns the key's primary owner, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	p := r.Prefer(key, 1)
	if len(p) == 0 {
		return ""
	}
	return p[0]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
