package cluster

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"ptx/internal/breaker"
)

// probeLoop is the coordinator's health prober: every ProbeInterval
// (±ProbeJitter, seeded — a fleet of coordinators spreads out instead
// of thundering in phase) it GETs each due member's /readyz. A failure
// marks the member down (bumping the epoch so successors gain
// checkpoint authority) and schedules its next probe with exponential
// backoff capped at 8 intervals; a success resets the backoff and marks
// it up, which also re-warms it. Forward failures mark nodes down
// faster than the prober can (see forward); the prober's job is
// RECOVERY — a restarted node is back in rotation within one interval.
func (c *Coordinator) probeLoop() {
	defer close(c.probeDone)
	rng := rand.New(rand.NewSource(c.cfg.ProbeSeed))
	timer := time.NewTimer(c.jittered(rng))
	defer timer.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-timer.C:
		}
		c.probeAll()
		timer.Reset(c.jittered(rng))
	}
}

// jittered returns one probe-tick delay: interval ± jitter fraction.
func (c *Coordinator) jittered(rng *rand.Rand) time.Duration {
	d := float64(c.cfg.ProbeInterval)
	d *= 1 + c.cfg.ProbeJitter*(2*rng.Float64()-1)
	return time.Duration(d)
}

// probeAll probes every member whose backoff window has elapsed, all
// concurrently, and applies the up/down transitions.
func (c *Coordinator) probeAll() {
	now := time.Now()
	c.mu.Lock()
	due := make([]MemberStatus, 0, len(c.members))
	for _, m := range c.members {
		if m.next.Before(now) || m.next.Equal(now) {
			due = append(due, MemberStatus{ID: m.id, URL: m.url, Up: m.up})
		}
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, m := range due {
		wg.Add(1)
		go func(m MemberStatus) {
			defer wg.Done()
			// Breaker-aware cadence: a peer with an open breaker is
			// probed on the breaker's half-open schedule, not hammered
			// every interval — Allow consumes the single half-open probe
			// slot, so the prober and the forward path never double-probe
			// a recovering node.
			if st := c.breakers.State(m.ID); st != breaker.Closed {
				if !c.breakers.Allow(m.ID) {
					return
				}
			}
			if c.probeOne(m.URL) {
				c.breakers.Success(m.ID)
				c.markUp(m.ID) // no-op if already up
			} else {
				c.breakers.Failure(m.ID)
				c.probeFailed(m.ID)
			}
		}(m)
	}
	wg.Wait()
}

// probeOne reports whether url's /readyz answers 200 within the probe
// window: at least 250ms even for fast probe cadences (a busy but
// healthy node must get a fair chance to answer), capped at 2s so one
// hung node cannot stall the sweep.
func (c *Coordinator) probeOne(url string) bool {
	timeout := c.cfg.ProbeInterval
	if timeout < 250*time.Millisecond {
		timeout = 250 * time.Millisecond
	}
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// probeFailed records one failed probe. An up member is only evicted
// after FailThreshold CONSECUTIVE failures (re-probed at full cadence
// until then); once down, the re-probe backs off exponentially, capped
// at 8 intervals, so a long-dead node costs ever fewer probes.
func (c *Coordinator) probeFailed(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return
	}
	m.fails++
	if m.up && m.fails < c.cfg.FailThreshold {
		// Still trusted: keep probing at full rate, keep serving.
		m.next = time.Now().Add(c.cfg.ProbeInterval)
		return
	}
	wasUp := m.up
	m.up = false
	backoff := c.cfg.ProbeInterval
	for i := 1; i < m.fails && backoff < 8*c.cfg.ProbeInterval; i++ {
		backoff *= 2
	}
	if backoff > 8*c.cfg.ProbeInterval {
		backoff = 8 * c.cfg.ProbeInterval
	}
	m.next = time.Now().Add(backoff)
	if wasUp {
		c.epoch.Add(1)
	}
}
