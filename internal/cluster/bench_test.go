package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// benchCluster stands up n storeless workers plus a coordinator with
// probing disabled: the benchmark measures the routed serving path, not
// checkpoint I/O or probe scheduling.
func benchCluster(b *testing.B, n int) (*Coordinator, *httptest.Server, []*testNode) {
	b.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		nodes[i] = newTestNode(b, fmt.Sprintf("bench-%d", i+1), nil, nil)
	}
	coord := New(Config{ProbeInterval: -1})
	b.Cleanup(coord.Close)
	for _, nd := range nodes {
		if err := coord.Join(nd.id, nd.url()); err != nil {
			b.Fatalf("join %s: %v", nd.id, err)
		}
	}
	cts := httptest.NewServer(coord.Handler())
	b.Cleanup(cts.Close)
	return coord, cts, nodes
}

// BenchmarkClusterThroughput drives the coordinator-routed publish path
// at fixed client concurrency for N=1 vs N=3 workers, reporting req/s
// and p99 latency. Every request body is distinct (a rotating
// timeout_ms) so the coordinator's dedup never collapses the load —
// this measures routing, not flight sharing. The CI bench-cluster job
// pins these numbers into BENCH_pr6.json.
func BenchmarkClusterThroughput(b *testing.B) {
	const concurrency = 8
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("nodes-%d", n), func(b *testing.B) {
			_, cts, _ := benchCluster(b, n)
			client := cts.Client()
			client.Transport.(*http.Transport).MaxIdleConnsPerHost = concurrency
			bodyFor := func(i int) []byte {
				// 5000+i%64: distinct wire bytes, identical semantics.
				return []byte(fmt.Sprintf(`{"spec":"tiny","db":"tinydb","limits":{"timeout_ms":%d}}`, 5000+i%64))
			}

			// Warm every node's pair cache so the benchmark measures the
			// steady-state routed path, not the first parse.
			resp, err := client.Post(cts.URL+"/publish", "application/json", bytes.NewReader(bodyFor(0)))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("warmup status %d", resp.StatusCode)
			}

			var mu sync.Mutex
			latencies := make([]time.Duration, 0, b.N)
			work := make(chan int)
			var wg sync.WaitGroup
			for i := 0; i < concurrency; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range work {
						start := time.Now()
						resp, err := client.Post(cts.URL+"/publish", "application/json", bytes.NewReader(bodyFor(i)))
						if err != nil {
							b.Errorf("post: %v", err)
							continue
						}
						var sink bytes.Buffer
						_, _ = sink.ReadFrom(resp.Body)
						resp.Body.Close()
						d := time.Since(start)
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d: %s", resp.StatusCode, sink.Bytes())
							continue
						}
						mu.Lock()
						latencies = append(latencies, d)
						mu.Unlock()
					}
				}()
			}

			b.ResetTimer()
			wall := time.Now()
			for i := 0; i < b.N; i++ {
				work <- i
			}
			close(work)
			wg.Wait()
			elapsed := time.Since(wall)
			b.StopTimer()

			if len(latencies) > 0 {
				sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
				p99 := latencies[len(latencies)*99/100]
				b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "req/s")
				b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
			}
		})
	}
}

// BenchmarkClusterRecovery measures time-to-first-byte after a node
// kill: each iteration stands up a fresh 2-node cluster, publishes once
// (warm), kills whichever node served the request, and times the next
// publish — the dial failure, the mark-down, the failover hop, and the
// successor's serve, end to end. Reported as recovery-ms.
func BenchmarkClusterRecovery(b *testing.B) {
	b.ReportAllocs()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		coord, cts, nodes := benchCluster(b, 2)
		body := []byte(`{"spec":"tiny","db":"tinydb"}`)
		resp, err := http.Post(cts.URL+"/publish", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("warm status %d", resp.StatusCode)
		}
		served := resp.Header.Get("X-Ptserve-Node")
		for _, n := range nodes {
			if n.id == served {
				n.ts.Close()
			}
		}
		b.StartTimer()
		start := time.Now()
		resp, err = http.Post(cts.URL+"/publish", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var sink bytes.Buffer
		_, _ = sink.ReadFrom(resp.Body)
		resp.Body.Close()
		total += time.Since(start)
		b.StopTimer()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("recovery status %d: %s", resp.StatusCode, sink.Bytes())
		}
		// Eager teardown: b.Cleanup only runs at benchmark end, which
		// would leave b.N clusters' listeners alive at once. The cleanups
		// then double-close, which is safe.
		cts.Close()
		coord.Close()
		for _, n := range nodes {
			n.ts.Close()
			n.srv.Close()
		}
	}
	if b.N > 0 {
		b.ReportMetric(float64(total.Microseconds())/float64(b.N)/1000, "recovery-ms")
	}
}
