// Network-chaos tests: the cluster under partitions, resets, corrupted
// and truncated streams, and slow-loris peers. The netchaos mesh sits
// between the coordinator and its nodes (and between the nodes'
// replication clients), so every fault here is a REAL wire fault, not
// a mocked error path. The contracts under test:
//
//   - every request ends in golden bytes or a typed schema error,
//     bounded by its propagated deadline budget (+ grace), never by a
//     flat client timeout;
//   - no mutation sequence number is ever acked twice (the dual-ack
//     anomaly asymmetric partitions are famous for);
//   - circuit breakers open on repeated transport failures, are
//     observable on /healthz, and the prober respects their half-open
//     schedule instead of hammering;
//   - hedged reads mask a partitioned primary; mutations never hedge;
//   - after HealAll the cluster converges back to ready with zero
//     goroutine leaks.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptx/internal/breaker"
	"ptx/internal/netchaos"
	"ptx/internal/serve"
	"ptx/internal/supervise"
	"ptx/internal/testutil"
)

// hostOf extracts the host:port peer name the mesh keys links by.
func hostOf(t testing.TB, raw string) string {
	t.Helper()
	u, err := neturl.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// meshedNode builds a worker whose replication client crosses the mesh
// (from = node id) and whose registry also carries mutdb — a second
// database so storm mutations never disturb the tinydb publish golden.
func meshedNode(t testing.TB, mesh *netchaos.Mesh, id string, store supervise.CheckpointStore) *testNode {
	t.Helper()
	return newTestNode(t, id, store, func(cfg *serve.Config) {
		if err := cfg.Registry.RegisterDB("mutdb", tinyDB); err != nil {
			t.Fatal(err)
		}
		cfg.ReplicateClient = &http.Client{
			Transport: mesh.Transport(id, nil),
			Timeout:   5 * time.Second,
		}
	})
}

// TestPartitionStorm is the chaos-mesh proof: a seeded request storm
// (publishes on tinydb, mutations on mutdb) through a coordinator whose
// client — and whose nodes' replication clients — cross a fault mesh,
// while a partitioner goroutine cuts, refuses and mangles random
// directional links mid-traffic. Uses stormSeeds() cases (reduced under
// -race, which CI runs this under).
func TestPartitionStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mesh := netchaos.NewMesh(4242)
	const nNodes = 3
	nodes := make([]*testNode, nNodes)
	froms := []string{"coord"}
	for i := range nodes {
		id := fmt.Sprintf("pstorm-%d", i+1)
		nodes[i] = meshedNode(t, mesh, id, store)
		froms = append(froms, id)
	}
	hosts := make([]string, nNodes)
	for i, n := range nodes {
		hosts[i] = hostOf(t, n.url())
	}

	const budgetMS = 2000
	grace := 250 * time.Millisecond
	coord := New(Config{
		ProbeInterval: 20 * time.Millisecond,
		ProbeSeed:     1,
		ForwardBudget: budgetMS * time.Millisecond,
		DeadlineGrace: grace,
		SyncTimeout:   time.Second,
		Client:        &http.Client{Transport: mesh.Transport("coord", nil)},
	})
	t.Cleanup(coord.Close)
	for _, n := range nodes {
		if err := coord.Join(n.id, n.url()); err != nil {
			t.Fatal(err)
		}
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	// Goldens bootstrapped over a clean mesh, before the chaos starts.
	goldens := map[bool][]byte{false: goldenXML(t)}
	if status, _, canon := postCluster(t, cts, `{"spec":"tiny","db":"tinydb","canonical":true}`); status != http.StatusOK {
		t.Fatalf("canonical golden bootstrap: status %d: %s", status, canon)
	} else {
		goldens[true] = canon
	}

	// The partitioner: seeded asymmetric link chaos while the storm
	// runs. Each window picks one directional (from, to) link and either
	// hard-partitions it (black hole), makes it refuse (fast-fail), or
	// mangles its response bodies; after a short hold the link heals.
	stopChaos := make(chan struct{})
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(777))
		for {
			select {
			case <-stopChaos:
				mesh.HealAll()
				return
			case <-time.After(time.Duration(8+rng.Intn(12)) * time.Millisecond):
			}
			from := froms[rng.Intn(len(froms))]
			to := hosts[rng.Intn(len(hosts))]
			kind := rng.Intn(3)
			switch kind {
			case 0:
				mesh.Partition(from, to)
			case 1:
				mesh.SetLink(from, to, netchaos.Faults{Refuse: 1})
			case 2:
				mesh.SetLink(from, to, netchaos.Faults{Reset: 0.4, Corrupt: 0.3, Truncate: 0.3})
			}
			select {
			case <-stopChaos:
			case <-time.After(time.Duration(8+rng.Intn(15)) * time.Millisecond):
			}
			mesh.Heal(from, to)
			mesh.ClearLink(from, to)
		}
	}()

	type tally struct {
		ok, mutOK, typed int
	}
	var tmu sync.Mutex
	var tl tally
	ackSeqs := make(map[uint64][]int64) // mutdb seq → seeds that got a 200 for it
	var slowest atomic.Int64            // worst request latency in ms

	var wg sync.WaitGroup
	sem := make(chan struct{}, 12)
	client := &http.Client{Timeout: 15 * time.Second}
	for seed := int64(1); seed <= int64(stormSeeds()); seed++ {
		seed := seed
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			time.Sleep(time.Duration(1+seed%6) * time.Millisecond)

			mutation := seed%3 == 0
			var path, body string
			if mutation {
				path = "/mutate"
				body = fmt.Sprintf(`{"spec":"tiny","db":"mutdb","ops":[{"op":"insert","rel":"R","tuple":["m%d"]}]}`, seed)
			} else {
				path = "/publish"
				body = newStormCase(seed).body()
			}
			start := time.Now()
			resp, err := client.Post(cts.URL+path, "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Errorf("seed %d: coordinator transport error: %v", seed, err)
				return
			}
			var buf bytes.Buffer
			_, rerr := buf.ReadFrom(resp.Body)
			resp.Body.Close()
			elapsed := time.Since(start)
			if ms := elapsed.Milliseconds(); ms > slowest.Load() {
				slowest.Store(ms)
			}
			// Deadline discipline: the coordinator answers within the
			// request's budget plus its grace; the slack absorbs client
			// scheduling under -race, nothing else. The pre-mesh flat
			// client timeout would have parked partitioned requests for
			// 90 seconds.
			if limit := budgetMS*time.Millisecond + grace + 2*time.Second; elapsed > limit {
				t.Errorf("seed %d: request took %v, outlived budget+grace (%v)", seed, elapsed, limit)
			}
			if rerr != nil {
				t.Errorf("seed %d: torn response body through coordinator: %v", seed, rerr)
				return
			}
			respBody := buf.Bytes()

			tmu.Lock()
			defer tmu.Unlock()
			if resp.StatusCode == http.StatusOK {
				if mutation {
					var ack struct {
						Seq uint64 `json:"seq"`
					}
					if err := json.Unmarshal(respBody, &ack); err != nil || ack.Seq == 0 {
						t.Errorf("seed %d: 200 mutate without a seq: %s", seed, respBody)
						return
					}
					ackSeqs[ack.Seq] = append(ackSeqs[ack.Seq], seed)
					tl.mutOK++
					return
				}
				canonical := newStormCase(seed).Canonical
				if !bytes.Equal(respBody, goldens[canonical]) {
					t.Errorf("seed %d: 200 bytes differ from golden (canonical=%v): %q", seed, canonical, respBody)
				}
				tl.ok++
				return
			}
			kind := decodeClusterError(t, resp.StatusCode, respBody)
			_ = kind
			tl.typed++
		}()
	}
	wg.Wait()
	close(stopChaos)
	<-chaosDone

	// Dual-ack check: a sequence number acked twice means two nodes both
	// believed they were the database's sequence authority — the exact
	// anomaly the write barrier + single-owner routing must prevent.
	for seq, seeds := range ackSeqs {
		if len(seeds) > 1 {
			t.Errorf("DUAL ACK: mutdb seq %d acked for %d mutations (seeds %v)", seq, len(seeds), seeds)
		}
	}

	// The chaos must have actually bitten, and the breakers must have
	// tripped observably. If the seeded windows happened to dodge every
	// request, force both: a refusing link and enough distinct publishes
	// to trip the owner's breaker and fail over.
	inj := mesh.Injected()
	var injected int64
	for _, v := range inj {
		injected += v
	}
	if injected == 0 {
		t.Error("mesh injected no faults; storm proved nothing")
	}
	if coord.Metrics().BreakerOpens == 0 {
		// The seeded windows never produced three consecutive transport
		// failures against one member. Force the condition: refuse every
		// coordinator link and let the prober's failures trip a breaker.
		mesh.SetLink("coord", "*", netchaos.Faults{Refuse: 1})
		waitFor(t, "a breaker to open under refused links", func() bool {
			return coord.Metrics().BreakerOpens > 0
		})
		mesh.ClearLink("coord", "*")
	}
	if got := coord.Metrics().BreakerOpens; got == 0 {
		t.Error("no breaker opened under sustained transport failures")
	}
	// Breaker state is part of the operator surface: /healthz carries
	// the open count and per-member states.
	func() {
		resp, err := http.Get(cts.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		defer resp.Body.Close()
		var hz struct {
			Metrics Metrics `json:"metrics"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatalf("healthz decode: %v", err)
		}
		if hz.Metrics.BreakerOpens == 0 {
			t.Error("/healthz does not report breaker opens")
		}
		for _, m := range hz.Metrics.Members {
			if m.Breaker == "" {
				t.Errorf("/healthz member %s missing breaker state", m.ID)
			}
		}
	}()

	// Heal and converge: the probers re-admit every node through the
	// breaker half-open schedule and the catch-up sync.
	mesh.HealAll()
	waitFor(t, "post-chaos readiness", func() bool {
		resp, err := http.Get(cts.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	status, _, healedBody := postCluster(t, cts, `{"spec":"tiny","db":"tinydb","limits":{"timeout_ms":4000}}`)
	if status != http.StatusOK || !bytes.Equal(healedBody, goldens[false]) {
		t.Errorf("post-heal publish: status %d: %s", status, healedBody)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := coord.Drain(ctx); err != nil {
		t.Fatalf("coordinator drain: %v", err)
	}
	for _, n := range nodes {
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := n.srv.Drain(dctx); err != nil {
			t.Errorf("node %s drain: %v", n.id, err)
		}
		dcancel()
		n.ts.Close()
	}
	cts.Close()
	client.CloseIdleConnections()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	testutil.SettledGoroutines(t, base)

	m := coord.Metrics()
	t.Logf("partition storm: %d publish ok, %d mutations acked, %d typed errors; slowest %dms; injected %v; failovers %d, hedges %d (wins %d), breaker opens %d",
		tl.ok, tl.mutOK, tl.typed, slowest.Load(), inj, m.Failovers, m.Hedges, m.HedgeWins, m.BreakerOpens)
	if tl.ok == 0 {
		t.Error("no publish survived the storm")
	}
	if total := tl.ok + tl.mutOK + tl.typed; total != stormSeeds() {
		t.Errorf("tally %d != %d requests — some request was LOST without a typed answer", total, stormSeeds())
	}
}

// TestSlowLorisPublishBoundedByDeadline pins satellite #1: the
// coordinator used to ride a flat 90s client timeout, so a node whose
// response body trickled out one byte at a time held the request (and
// its dedup flight) for the full 90 seconds. Now the request's own
// 2s budget — propagated via X-Ptx-Deadline — bounds it.
func TestSlowLorisPublishBoundedByDeadline(t *testing.T) {
	mesh := netchaos.NewMesh(7)
	node := newTestNode(t, "loris-1", nil, nil)
	coord := New(Config{
		ProbeInterval: -1,
		HedgeDelay:    -1, // no second node to rescue this; measure the bound itself
		Client:        &http.Client{Transport: mesh.Transport("coord", nil)},
	})
	t.Cleanup(coord.Close)
	if err := coord.Join(node.id, node.url()); err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	mesh.SetLink("coord", hostOf(t, node.url()), netchaos.Faults{SlowLoris: 1, SlowPace: 80 * time.Millisecond})
	start := time.Now()
	status, _, body := postCluster(t, cts, `{"spec":"tiny","db":"tinydb","limits":{"timeout_ms":2000}}`)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("slow-loris publish took %v — outlived its 2s budget + grace", elapsed)
	}
	if elapsed < time.Second {
		t.Fatalf("slow-loris publish returned in %v — the fault never engaged", elapsed)
	}
	if kind := decodeClusterError(t, status, body); kind != serve.KindCanceled {
		t.Fatalf("slow-loris publish ended with kind %q, want %q", kind, serve.KindCanceled)
	}
}

// TestWatchHedgesAroundPartition: a hedged watch CONNECT masks a
// black-holed primary — the watcher gets its stream from the next
// preference-list member after the hedge delay, not after a timeout.
func TestWatchHedgesAroundPartition(t *testing.T) {
	mesh := netchaos.NewMesh(13)
	coord, cts, nodes := newTestCluster(t, 2, Config{
		ProbeInterval: -1,
		ForwardBudget: 2 * time.Second, // hedge auto-delay = budget/4 = 500ms
		Client:        &http.Client{Transport: mesh.Transport("coord", nil)},
	})

	// Learn which node owns the (tiny, tinydb) watch route.
	status, hdr, body := getWatch(t, cts, "spec=tiny&db=tinydb")
	if status != http.StatusOK {
		t.Fatalf("clean watch: status %d: %s", status, body)
	}
	ownerID := hdr.Get("X-Ptserve-Node")
	var ownerHost string
	for _, n := range nodes {
		if n.id == ownerID {
			ownerHost = hostOf(t, n.url())
		}
	}
	if ownerHost == "" {
		t.Fatalf("owner %q not among nodes", ownerID)
	}

	mesh.Partition("coord", ownerHost)
	start := time.Now()
	status, hdr, body = getWatch(t, cts, "spec=tiny&db=tinydb")
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("hedged watch: status %d: %s", status, body)
	}
	if hdr.Get("X-Ptcoord-Hedged") != "true" {
		t.Fatalf("watch succeeded without the hedge marker (served by %s in %v)", hdr.Get("X-Ptserve-Node"), elapsed)
	}
	if got := hdr.Get("X-Ptserve-Node"); got == ownerID {
		t.Fatalf("partitioned owner %q somehow served the watch", got)
	}
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("hedged watch took %v, want ~hedge delay (500ms)", elapsed)
	}
	if m := coord.Metrics(); m.Hedges == 0 || m.HedgeWins == 0 {
		t.Fatalf("hedge counters not advanced: %+v", m)
	}
	mesh.HealAll()
}

// TestProberRespectsOpenBreaker pins satellite #2: once a member's
// breaker opens, the health prober probes it on the breaker's half-open
// schedule instead of every ProbeInterval — and the half-open probe is
// what re-admits the member when it recovers.
func TestProberRespectsOpenBreaker(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	var readyzHits atomic.Int64
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		readyzHits.Add(1)
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	t.Cleanup(ws.Close)

	coord := New(Config{
		ProbeInterval: 20 * time.Millisecond,
		ProbeSeed:     7,
		Breaker:       breaker.Config{Threshold: 1, Cooldown: time.Second, Jitter: 0.01},
	})
	t.Cleanup(coord.Close)
	if err := coord.Join("flaky", ws.URL); err != nil {
		t.Fatal(err)
	}

	ready.Store(false)
	waitFor(t, "breaker to open on probe failure", func() bool {
		return coord.Metrics().BreakerOpens >= 1
	})

	// With the breaker open (1s cooldown), a 600ms window at 20ms probe
	// cadence would see ~30 probes if the prober ignored it. The
	// half-open schedule allows at most the one probe already in flight.
	before := readyzHits.Load()
	time.Sleep(600 * time.Millisecond)
	if got := readyzHits.Load() - before; got > 1 {
		t.Fatalf("prober sent %d probes in 600ms to an open-breaker peer (cooldown 1s)", got)
	}

	// Recovery rides the half-open slot: the node comes back, the next
	// scheduled probe closes the breaker.
	ready.Store(true)
	waitFor(t, "half-open probe to close the breaker", func() bool {
		ms := coord.Metrics().Members
		return len(ms) == 1 && ms[0].Breaker == breaker.Closed.String()
	})
}

// TestReplicaPartitionWithholdsAck pins satellite #3: a mutation whose
// replica is PARTITIONED (not killed — the node is alive and will
// rejoin) is NOT acked: the owner reports the failed replica, the
// coordinator answers a typed transient 503 and marks the replica
// down, and after the partition heals a retry re-replicates and acks.
// Mutations are never hedged — the hedge counter must stay zero.
func TestReplicaPartitionWithholdsAck(t *testing.T) {
	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mesh := netchaos.NewMesh(23)
	nodes := make([]*testNode, 3)
	for i := range nodes {
		nodes[i] = meshedNode(t, mesh, fmt.Sprintf("rp-%d", i+1), store)
	}
	coord := New(Config{
		ProbeInterval: 20 * time.Millisecond,
		ProbeSeed:     3,
		ForwardBudget: time.Second,
		SyncTimeout:   time.Second,
	})
	t.Cleanup(coord.Close)
	for _, n := range nodes {
		if err := coord.Join(n.id, n.url()); err != nil {
			t.Fatal(err)
		}
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	ownerID := coord.ring.Owner("mutate\x00tinydb")
	var replica *testNode
	for _, n := range nodes {
		if n.id != ownerID {
			replica = n
			break
		}
	}

	// One-way partition: owner → replica replication black-holes; the
	// replica itself stays fully reachable (probes keep succeeding).
	mesh.Partition(ownerID, hostOf(t, replica.url()))
	start := time.Now()
	status, hdr, body := postMutate(t, cts, insertD)
	elapsed := time.Since(start)
	if kind := decodeClusterError(t, status, body); kind != serve.KindTransient {
		t.Fatalf("partitioned-replica mutation: kind %q, want %q (body %s)", kind, serve.KindTransient, body)
	}
	if failed := hdr.Get(serve.HeaderReplicaFailed); failed == "" {
		t.Fatalf("ack withheld without naming the failed replica (headers %v)", hdr)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("withheld ack took %v — replication wait must be deadline-bounded", elapsed)
	}

	// Heal; the prober re-admits the replica through the catch-up sync,
	// and the retry replicates to the full successor set again.
	mesh.HealAll()
	waitFor(t, "replica re-admitted after heal", func() bool {
		for _, m := range coord.Metrics().Members {
			if !m.Up {
				return false
			}
		}
		return true
	})
	var ack struct {
		Seq        uint64 `json:"seq"`
		Replicated int    `json:"replicated"`
	}
	// The retry can race the first post-heal probe sweeps; poll briefly.
	waitFor(t, "post-heal mutation to ack", func() bool {
		status, _, body = postMutate(t, cts, insertD)
		return status == http.StatusOK && json.Unmarshal(body, &ack) == nil
	})
	if ack.Seq == 0 || ack.Replicated != 2 {
		t.Fatalf("post-heal ack %+v, want seq>0 replicated=2", ack)
	}
	waitFor(t, "replica log to carry the delta", func() bool {
		return coord.memberSeq(replica.url(), "tinydb") >= ack.Seq
	})
	if got := coord.Metrics().Hedges; got != 0 {
		t.Fatalf("mutation path fired %d hedges; mutations must NEVER hedge", got)
	}
}

// BenchmarkHedgedPublish measures publish latency through a coordinator
// whose primary link is degraded (100ms injected latency), hedged vs
// unhedged. The CI bench-hedge job pins p50/p99 into BENCH_pr10.json:
// the hedged p99 should sit near the hedge delay, not the degradation.
func BenchmarkHedgedPublish(b *testing.B) {
	run := func(b *testing.B, hedge time.Duration) {
		mesh := netchaos.NewMesh(99)
		nodes := make([]*testNode, 2)
		for i := range nodes {
			nodes[i] = newTestNode(b, fmt.Sprintf("hb-%d", i+1), nil, nil)
		}
		coord := New(Config{
			ProbeInterval: -1,
			HedgeDelay:    hedge,
			Client:        &http.Client{Transport: mesh.Transport("coord", nil)},
		})
		b.Cleanup(coord.Close)
		for _, n := range nodes {
			if err := coord.Join(n.id, n.url()); err != nil {
				b.Fatal(err)
			}
		}
		cts := httptest.NewServer(coord.Handler())
		b.Cleanup(cts.Close)

		// Find the primary and degrade only its link.
		resp, err := http.Post(cts.URL+"/publish", "application/json",
			bytes.NewReader([]byte(`{"spec":"tiny","db":"tinydb"}`)))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		primary := resp.Header.Get("X-Ptserve-Node")
		for _, n := range nodes {
			if n.id == primary {
				mesh.SetLink("coord", hostOf(b, n.url()), netchaos.Faults{Latency: 100 * time.Millisecond})
			}
		}

		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"spec":"tiny","db":"tinydb","limits":{"timeout_ms":%d}}`, 5000+i)
			start := time.Now()
			resp, err := http.Post(cts.URL+"/publish", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				b.Fatal(err)
			}
			var sink bytes.Buffer
			_, _ = sink.ReadFrom(resp.Body)
			resp.Body.Close()
			lat = append(lat, time.Since(start))
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d: %s", resp.StatusCode, sink.Bytes())
			}
		}
		b.StopTimer()
		if len(lat) > 0 {
			p50, p99 := percentiles(lat)
			b.ReportMetric(float64(p50.Microseconds())/1000, "p50-ms")
			b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
		}
	}
	b.Run("unhedged", func(b *testing.B) { run(b, -1) })
	b.Run("hedged-20ms", func(b *testing.B) { run(b, 20*time.Millisecond) })
}

func percentiles(lat []time.Duration) (p50, p99 time.Duration) {
	s := append([]time.Duration(nil), lat...)
	for i := 1; i < len(s); i++ { // insertion sort; bench-sized inputs
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)*50/100], s[len(s)*99/100]
}
