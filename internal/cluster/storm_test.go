package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"ptx/internal/serve"
	"ptx/internal/supervise"
	"ptx/internal/testutil"
)

// stormSeeds mirrors the serve-level storm sizing: 100+ seeded
// requests normally, a reduced per-shape batch under the race detector
// (the CI cluster-smoke job runs exactly the reduced batch).
func stormSeeds() int {
	if raceEnabled {
		return 48
	}
	return 120
}

// stormCase is one seeded cluster request, derived from its seed alone
// so a CI failure replays locally with the same number. A nonce keeps
// every case a distinct logical run — the storm measures routing and
// recovery, not coordinator dedup.
type stormCase struct {
	Seed      int64 `json:"seed"`
	Canonical bool  `json:"canonical"`
	Retries   int   `json:"retries"`
	MaxNodes  int   `json:"max_nodes,omitempty"` // 0 = server default
	TimeoutMS int64 `json:"timeout_ms"`
}

func newStormCase(seed int64) stormCase {
	rng := rand.New(rand.NewSource(seed))
	c := stormCase{
		Seed:      seed,
		Canonical: rng.Intn(2) == 0,
		Retries:   rng.Intn(3),
		TimeoutMS: 2000,
	}
	// A sixth of the cases carry a starvation budget — these are the
	// runs that exercise checkpoint handoff when their node dies.
	if rng.Intn(6) == 0 {
		c.MaxNodes = 3 + rng.Intn(3)
	}
	return c
}

func (c stormCase) body() string {
	req := map[string]any{
		"spec":      "tiny",
		"db":        "tinydb",
		"canonical": c.Canonical,
		"retries":   c.Retries,
		"limits":    map[string]any{"timeout_ms": c.TimeoutMS + c.Seed%7, "max_nodes": c.MaxNodes},
	}
	b, _ := json.Marshal(req)
	return string(b)
}

// dumpStormArtifact ships a violating case to CHAOS_ARTIFACT_DIR so
// the CI failure report carries the replayable scenario.
func dumpStormArtifact(t *testing.T, c stormCase, violation string) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	desc := fmt.Sprintf("case=%+v\nrequest=%s\nviolation=%s\n", c, c.body(), violation)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("cluster-storm-%d.txt", c.Seed)), []byte(desc), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// TestClusterStorm is the cluster chaos harness: a seeded request
// storm through the coordinator while a killer goroutine repeatedly
// KILLS a worker node mid-storm and restarts it (new listener, same
// identity, re-joined — the shared store is what survives). Every
// request must end in golden bytes or a typed schema error; afterwards
// the coordinator drains clean with zero goroutine leaks and must have
// actually exercised failover.
func TestClusterStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const nNodes = 3
	var mu sync.Mutex // guards nodes (the killer swaps entries)
	nodes := make([]*testNode, nNodes)
	for i := range nodes {
		nodes[i] = newTestNode(t, fmt.Sprintf("storm-%d", i+1), store, nil)
	}
	coord := New(Config{ProbeInterval: 20 * time.Millisecond, ProbeSeed: 1})
	for _, n := range nodes {
		if err := coord.Join(n.id, n.url()); err != nil {
			t.Fatal(err)
		}
	}
	cts := httptest.NewServer(coord.Handler())

	// Non-canonical golden straight from the engine; the canonical one
	// bootstrapped with a single clean post before the chaos starts.
	goldens := map[bool][]byte{false: goldenXML(t)}
	if status, _, canon := postCluster(t, cts, `{"spec":"tiny","db":"tinydb","canonical":true}`); status != http.StatusOK {
		t.Fatalf("canonical golden bootstrap: status %d: %s", status, canon)
	} else {
		goldens[true] = canon
	}

	// The killer: seeded kill/restart cycles while the storm runs. Each
	// cycle hard-closes one node's listener (in-flight requests die with
	// torn connections), lets the storm feel the hole, then brings the
	// node back at a fresh address and re-joins it under the same id.
	stopKiller := make(chan struct{})
	killerDone := make(chan struct{})
	kills := 0
	go func() {
		defer close(killerDone)
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stopKiller:
				return
			case <-time.After(time.Duration(10+rng.Intn(15)) * time.Millisecond):
			}
			i := rng.Intn(nNodes)
			mu.Lock()
			victim := nodes[i]
			mu.Unlock()
			victim.ts.Close()
			kills++
			time.Sleep(time.Duration(10+rng.Intn(15)) * time.Millisecond)
			replacement := newTestNode(t, victim.id, store, nil)
			if err := coord.Join(replacement.id, replacement.url()); err != nil {
				t.Errorf("re-join %s: %v", replacement.id, err)
				return
			}
			mu.Lock()
			nodes[i] = replacement
			mu.Unlock()
		}
	}()

	type tally struct {
		ok, budget, canceled, overloaded, transient, conflict, resumed int
	}
	var tmu sync.Mutex
	var tl tally
	var wg sync.WaitGroup
	sem := make(chan struct{}, 12)
	client := &http.Client{Timeout: 10 * time.Second}
	for seed := int64(1); seed <= int64(stormSeeds()); seed++ {
		c := newStormCase(seed)
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// Seeded pacing stretches the batch across the kill windows —
			// an unpaced batch can finish before the first kill lands.
			time.Sleep(time.Duration(1+c.Seed%6) * time.Millisecond)
			resp, err := client.Post(cts.URL+"/publish", "application/json", bytes.NewReader([]byte(c.body())))
			if err != nil {
				// The coordinator itself is never killed; a transport error
				// here is a harness failure, not chaos.
				dumpStormArtifact(t, c, err.Error())
				t.Errorf("seed %d: coordinator transport error: %v", c.Seed, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				dumpStormArtifact(t, c, "torn response body")
				t.Errorf("seed %d: reading body: %v", c.Seed, err)
				return
			}
			body := buf.Bytes()
			tmu.Lock()
			defer tmu.Unlock()
			if resp.StatusCode == http.StatusOK {
				if !bytes.Equal(body, goldens[c.Canonical]) {
					dumpStormArtifact(t, c, "200 body differs from golden")
					t.Errorf("seed %d: served bytes differ from golden (canonical=%v)", c.Seed, c.Canonical)
				}
				tl.ok++
				if resp.Header.Get("X-Ptserve-Resumed") == "true" {
					tl.resumed++
				}
				return
			}
			var eb struct {
				Error serve.ErrorInfo `json:"error"`
			}
			if err := json.Unmarshal(body, &eb); err != nil {
				dumpStormArtifact(t, c, "untyped error body")
				t.Errorf("seed %d: non-JSON error body (status %d): %s", c.Seed, resp.StatusCode, body)
				return
			}
			want, known := serve.StatusForKind(eb.Error.Kind)
			if !known || want != resp.StatusCode {
				dumpStormArtifact(t, c, "kind/status mismatch")
				t.Errorf("seed %d: kind %q with status %d (pinned %d)", c.Seed, eb.Error.Kind, resp.StatusCode, want)
				return
			}
			switch eb.Error.Kind {
			case serve.KindBudget:
				tl.budget++
			case serve.KindCanceled:
				tl.canceled++
			case serve.KindOverloaded:
				tl.overloaded++
			case serve.KindTransient:
				tl.transient++
			case serve.KindConflict:
				tl.conflict++
			default:
				dumpStormArtifact(t, c, "unexpected error kind")
				t.Errorf("seed %d: unexpected kind %q: %s", c.Seed, eb.Error.Kind, body)
			}
		}()
	}
	wg.Wait()
	close(stopKiller)
	<-killerDone

	// The cluster must have actually been hurt — and healed: kills
	// happened, failovers fired, and the coordinator is ready again
	// within a probe interval of the last restart.
	if kills == 0 {
		t.Fatal("killer never fired; storm proved nothing")
	}
	if coord.Metrics().Failovers == 0 {
		// The seeded batch dodged every dead window (possible on a fast
		// machine). Force the scenario the chaos was hunting: kill the
		// live owner of the routed pair and publish through the hole.
		status, hdr, respBody := postCluster(t, cts, `{"spec":"tiny","db":"tinydb","limits":{"timeout_ms":2100}}`)
		if status != http.StatusOK {
			t.Fatalf("failover backstop scout: status %d: %s", status, respBody)
		}
		ownerID := hdr.Get("X-Ptserve-Node")
		mu.Lock()
		for _, n := range nodes {
			if n.id == ownerID {
				n.ts.Close()
			}
		}
		mu.Unlock()
		status, _, respBody = postCluster(t, cts, `{"spec":"tiny","db":"tinydb","limits":{"timeout_ms":2101}}`)
		if status != http.StatusOK || !bytes.Equal(respBody, goldens[false]) {
			t.Fatalf("failover backstop: status %d: %s", status, respBody)
		}
	}
	m := coord.Metrics()
	if m.Failovers == 0 {
		t.Error("no failover observed even after killing the routed owner")
	}
	waitFor(t, "post-storm readiness", func() bool {
		resp, err := http.Get(cts.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// Teardown: coordinator drains clean, every node drains clean, and
	// nothing is left running.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := coord.Drain(ctx); err != nil {
		t.Fatalf("coordinator drain: %v", err)
	}
	mu.Lock()
	final := append([]*testNode(nil), nodes...)
	mu.Unlock()
	for _, n := range final {
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := n.srv.Drain(dctx); err != nil {
			t.Errorf("node %s drain: %v", n.id, err)
		}
		dcancel()
		n.ts.Close()
	}
	cts.Close()
	client.CloseIdleConnections()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	testutil.SettledGoroutines(t, base)

	t.Logf("cluster storm: %d kills; %d ok (%d resumed), %d budget, %d canceled, %d overloaded, %d transient, %d conflict; %d failovers, epoch %d",
		kills, tl.ok, tl.resumed, tl.budget, tl.canceled, tl.overloaded, tl.transient, tl.conflict, m.Failovers, m.Epoch)
	if tl.ok == 0 {
		t.Error("no storm request succeeded")
	}
	total := tl.ok + tl.budget + tl.canceled + tl.overloaded + tl.transient + tl.conflict
	if total != stormSeeds() {
		t.Errorf("tally %d != %d requests — some run was LOST without a typed answer", total, stormSeeds())
	}
}
