// The durability storm: the acceptance harness for "no acknowledged
// delta is ever lost". Seeded mutators push unique two-op deltas
// through the coordinator while a killer crashes worker nodes (WAL and
// all) and restarts them from disk, and probabilistic crash points
// inside the WAL fail appends before they become durable. Invariants:
//
//   - every delta acknowledged with 200 is present after every crash,
//     restart, and failover — including a final rolling restart of the
//     whole cluster from the on-disk logs alone;
//   - a delta that only ever died at a pre-durable crash point
//     (storage-kind errors on every attempt) is atomically absent;
//   - no reader ever observes a torn delta: each two-op pair appears
//     in a published document either whole or not at all;
//   - the storm leaks zero goroutines.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"ptx/internal/runctl"
	"ptx/internal/serve"
	"ptx/internal/testutil"
	"ptx/internal/wal"
)

// durabilitySeeds is pinned at 120 even under the race detector — the
// acceptance criterion is the full batch with -race on.
const durabilitySeeds = 120

// errInjectedMedia is the fault every WAL crash point raises; it
// surfaces to clients as a storage-kind 503.
var errInjectedMedia = errors.New("injected media fault")

// durNode is a testNode whose registry commits through a real on-disk
// WAL, so the node can be killed and rebuilt from that directory.
type durNode struct {
	*testNode
	log *wal.Log
	dir string
}

// openDurNode builds a worker whose WAL lives in dir (reusing whatever
// records are already there) with seeded pre-durable crash points. A
// faultSeed of 0 disables injection — that is the recovery
// configuration.
func openDurNode(t *testing.T, id, dir string, faultSeed int64) *durNode {
	t.Helper()
	var plan *runctl.FaultPlan
	if faultSeed != 0 {
		plan = runctl.SeededPlan(faultSeed, errInjectedMedia, map[runctl.Op]float64{
			runctl.OpWALAppend: 0.10,
			runctl.OpWALSync:   0.08,
		})
	}
	var l *wal.Log
	n := newTestNode(t, id, nil, func(cfg *serve.Config) {
		var err error
		l, err = wal.Open(dir, wal.Options{Faults: plan})
		if err != nil {
			t.Fatalf("open WAL %s: %v", dir, err)
		}
		cfg.Registry.AttachWAL(l)
	})
	d := &durNode{testNode: n, log: l, dir: dir}
	t.Cleanup(func() { _ = l.Close() })
	return d
}

// kill hard-stops the node: listener, server, and WAL handle. The only
// thing that survives is the directory.
func (d *durNode) kill() {
	d.ts.Close()
	d.srv.Close()
	_ = d.log.Close()
}

// durSeed is one logical delta: a pair of tuples inserted atomically,
// derived from the seed alone so failures replay by number.
type durSeed struct {
	Seed int64 `json:"seed"`
}

func (c durSeed) pair() (string, string) {
	return fmt.Sprintf("s%da", c.Seed), fmt.Sprintf("s%db", c.Seed)
}

func (c durSeed) body() string {
	a, b := c.pair()
	return fmt.Sprintf(`{"spec":"tiny","db":"tinydb","ops":[{"op":"insert","rel":"R","tuple":[%q]},{"op":"insert","rel":"R","tuple":[%q]}]}`, a, b)
}

func dumpDurabilityArtifact(t *testing.T, c durSeed, violation string) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	desc := fmt.Sprintf("case=%+v\nrequest=%s\nviolation=%s\n", c, c.body(), violation)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("durability-storm-%d.txt", c.Seed)), []byte(desc), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// pairState classifies one seed's pair inside a published document:
// whole, absent, or torn.
func pairState(body []byte, c durSeed) string {
	// Tuple values render as whitespace-delimited text lines inside
	// <item>; every value starts with its only 's', so no value is a
	// substring of another and a plain scan is exact.
	a, b := c.pair()
	hasA := bytes.Contains(body, []byte(a))
	hasB := bytes.Contains(body, []byte(b))
	switch {
	case hasA && hasB:
		return "whole"
	case !hasA && !hasB:
		return "absent"
	default:
		return "torn"
	}
}

func TestDurabilityStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	const nNodes = 3
	root := t.TempDir()
	var mu sync.Mutex // guards nodes (killer and final restart swap entries)
	nodes := make([]*durNode, nNodes)
	dirs := make([]string, nNodes)
	for i := range nodes {
		dirs[i] = filepath.Join(root, fmt.Sprintf("wal-%d", i+1))
		nodes[i] = openDurNode(t, fmt.Sprintf("dur-%d", i+1), dirs[i], int64(1000+i))
	}
	coord := New(Config{ProbeInterval: 20 * time.Millisecond, ProbeSeed: 7})
	t.Cleanup(coord.Close)
	for _, n := range nodes {
		if err := coord.Join(n.id, n.url()); err != nil {
			t.Fatal(err)
		}
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	// The killer: crash one worker (listener + server + WAL handle),
	// rebuild it from its directory, and re-join it under the same id.
	// Join's write barrier replays the disk log and pulls the missed
	// tail from a peer before the node can own mutations again.
	stopKiller := make(chan struct{})
	killerDone := make(chan struct{})
	kills := 0
	go func() {
		defer close(killerDone)
		rng := rand.New(rand.NewSource(4242))
		gen := int64(0)
		for {
			select {
			case <-stopKiller:
				return
			case <-time.After(time.Duration(20+rng.Intn(25)) * time.Millisecond):
			}
			i := rng.Intn(nNodes)
			mu.Lock()
			victim := nodes[i]
			mu.Unlock()
			victim.kill()
			kills++
			gen++
			time.Sleep(time.Duration(10+rng.Intn(15)) * time.Millisecond)
			replacement := openDurNode(t, victim.id, victim.dir, 2000+gen)
			if err := coord.Join(replacement.id, replacement.url()); err != nil {
				t.Errorf("re-join %s: %v", replacement.id, err)
				return
			}
			mu.Lock()
			nodes[i] = replacement
			mu.Unlock()
		}
	}()

	// Each seed retries its delta up to five times; the outcome is the
	// seed's durability contract. "acked": some attempt returned 200 —
	// the pair must survive everything. "lost": every attempt died at a
	// pre-durable storage crash point — the pair must be absent.
	// "unknown": a transport-path failure (dead owner, fence, overload)
	// means the delta may or may not have landed; it must still be
	// atomic.
	outcomes := make([]string, durabilitySeeds+1)
	var omu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	client := &http.Client{Timeout: 10 * time.Second}
	torn := 0
	for seed := int64(1); seed <= durabilitySeeds; seed++ {
		c := durSeed{Seed: seed}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			time.Sleep(time.Duration(1+c.Seed%9) * time.Millisecond)
			outcome := "lost"
			for attempt := 0; attempt < 5; attempt++ {
				resp, err := client.Post(cts.URL+"/mutate", "application/json", bytes.NewReader([]byte(c.body())))
				if err != nil {
					// The coordinator is never killed; this is a harness bug.
					dumpDurabilityArtifact(t, c, "coordinator transport error: "+err.Error())
					t.Errorf("seed %d: coordinator transport error: %v", c.Seed, err)
					outcome = "unknown"
					break
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					outcome = "unknown"
					continue
				}
				if resp.StatusCode == http.StatusOK {
					outcome = "acked"
					break
				}
				var eb struct {
					Error serve.ErrorInfo `json:"error"`
				}
				if err := json.Unmarshal(body, &eb); err != nil {
					dumpDurabilityArtifact(t, c, fmt.Sprintf("untyped error (status %d): %s", resp.StatusCode, body))
					t.Errorf("seed %d: untyped error (status %d): %s", c.Seed, resp.StatusCode, body)
					outcome = "unknown"
					break
				}
				switch eb.Error.Kind {
				case serve.KindStorage:
					// Pre-durable crash point: the WAL rolled the write
					// back; this attempt provably left nothing behind.
				case serve.KindTransient, serve.KindConflict, serve.KindOverloaded, serve.KindDraining:
					// The delta may have landed without the ack reaching
					// us; only atomicity is assertable for this seed.
					outcome = "unknown"
				default:
					dumpDurabilityArtifact(t, c, "unexpected kind "+eb.Error.Kind)
					t.Errorf("seed %d: unexpected error kind %q: %s", c.Seed, eb.Error.Kind, body)
					outcome = "unknown"
				}
				time.Sleep(time.Duration(5*(attempt+1)) * time.Millisecond)
			}
			omu.Lock()
			outcomes[c.Seed] = outcome
			omu.Unlock()

			// Every fourth seed doubles as a live reader: publish through
			// the coordinator and scan for torn pairs mid-chaos.
			if c.Seed%4 != 0 {
				return
			}
			resp, err := client.Post(cts.URL+"/publish", "application/json", bytes.NewReader([]byte(`{"spec":"tiny","db":"tinydb","retries":2}`)))
			if err != nil {
				t.Errorf("seed %d: publish transport error: %v", c.Seed, err)
				return
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil || resp.StatusCode != http.StatusOK {
				return // typed failures under chaos are fine; only 200 bodies are inspected
			}
			omu.Lock()
			defer omu.Unlock()
			for s := int64(1); s <= durabilitySeeds; s++ {
				sc := durSeed{Seed: s}
				if pairState(body, sc) == "torn" {
					torn++
					dumpDurabilityArtifact(t, sc, fmt.Sprintf("torn pair in live publish (reader seed %d)", c.Seed))
					t.Errorf("seed %d: torn pair observed in live publish", s)
				}
			}
		}()
	}
	wg.Wait()
	close(stopKiller)
	<-killerDone
	if kills == 0 {
		t.Fatal("killer never fired; storm proved nothing")
	}

	// Recovery: rolling restart of the whole cluster with fault
	// injection OFF. Each node comes back from its on-disk WAL alone,
	// then heals any missed tail from a live peer under the join
	// barrier.
	mu.Lock()
	final := append([]*durNode(nil), nodes...)
	mu.Unlock()
	for i, n := range final {
		n.kill()
		reborn := openDurNode(t, n.id, n.dir, 0)
		if err := coord.Join(reborn.id, reborn.url()); err != nil {
			t.Fatalf("final re-join %s: %v", reborn.id, err)
		}
		final[i] = reborn
	}
	waitFor(t, "post-recovery readiness", func() bool {
		resp, err := http.Get(cts.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// After the rolling faultless restart every node's log must have
	// converged to the same sequence mark: the coordinator refuses to
	// promote a node that has not reached the acked high-water, so a
	// divergent survivor here means the convergence gate leaked.
	var seqs []uint64
	for _, n := range final {
		resp, err := http.Get(n.url() + "/deltalog?db=tinydb")
		if err != nil {
			t.Fatalf("deltalog %s: %v", n.id, err)
		}
		var dl struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&dl); err != nil {
			t.Fatalf("deltalog %s: %v", n.id, err)
		}
		resp.Body.Close()
		seqs = append(seqs, dl.Seq)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[0] {
			t.Errorf("logs diverged after recovery: %s at seq %d, %s at seq %d",
				final[0].id, seqs[0], final[i].id, seqs[i])
		}
	}

	// Every restarted node must have replayed records from disk.
	replayed := int64(0)
	for _, n := range final {
		var hz struct {
			Metrics serve.Metrics `json:"metrics"`
		}
		resp, err := http.Get(n.url() + "/healthz")
		if err != nil {
			t.Fatalf("healthz %s: %v", n.id, err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatalf("healthz %s: %v", n.id, err)
		}
		resp.Body.Close()
		replayed += hz.Metrics.Recovered
	}
	if replayed == 0 {
		t.Error("no node recovered any WAL record; the storm never exercised replay")
	}

	// The verdict: one publish from each node (direct, not proxied) —
	// acked pairs present everywhere, storage-lost pairs absent
	// everywhere, nothing torn anywhere.
	acked, lost, unknown := 0, 0, 0
	for _, n := range final {
		resp, err := http.Post(n.url()+"/publish", "application/json", bytes.NewReader([]byte(`{"spec":"tiny","db":"tinydb"}`)))
		if err != nil {
			t.Fatalf("final publish on %s: %v", n.id, err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("final publish on %s: status %d: %s", n.id, resp.StatusCode, body)
		}
		for s := int64(1); s <= durabilitySeeds; s++ {
			c := durSeed{Seed: s}
			state := pairState(body, c)
			switch outcomes[s] {
			case "acked":
				if state != "whole" {
					dumpDurabilityArtifact(t, c, "acked delta "+state+" after recovery on "+n.id)
					t.Errorf("seed %d: ACKED delta is %s on %s after recovery", s, state, n.id)
				}
			case "lost":
				if state != "absent" {
					dumpDurabilityArtifact(t, c, "storage-failed delta "+state+" after recovery on "+n.id)
					t.Errorf("seed %d: storage-failed delta is %s on %s (rollback leaked)", s, state, n.id)
				}
			default:
				if state == "torn" {
					dumpDurabilityArtifact(t, c, "torn delta after recovery on "+n.id)
					t.Errorf("seed %d: torn delta on %s after recovery", s, n.id)
				}
			}
		}
	}
	for s := int64(1); s <= durabilitySeeds; s++ {
		switch outcomes[s] {
		case "acked":
			acked++
		case "lost":
			lost++
		default:
			unknown++
		}
	}
	if acked == 0 {
		t.Error("no seed was ever acknowledged; the storm proved nothing about durability")
	}

	// Teardown: drain everything, then the goroutine ledger must
	// balance.
	for _, n := range final {
		n.kill()
	}
	client.CloseIdleConnections()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	testutil.SettledGoroutines(t, base)
	t.Logf("durability storm: %d kills; %d acked, %d lost, %d unknown of %d seeds; %d torn views; %d records replayed",
		kills, acked, lost, unknown, durabilitySeeds, torn, replayed)
}
