package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	neturl "net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ptx/internal/breaker"
	"ptx/internal/runctl"
	"ptx/internal/serve"
)

// Config parameterizes a Coordinator. The zero value of every field
// selects a production-sane default.
type Config struct {
	// VNodes is the number of ring points per member (default 64).
	VNodes int
	// Replicas caps how many preference-list members one request may
	// try before giving up (default 0 = every member).
	Replicas int

	// ProbeInterval is the health-probe cadence (default 500ms; negative
	// disables probing — forward-failure mark-down still works).
	ProbeInterval time.Duration
	// ProbeJitter spreads each probe tick by ±fraction (default 0.2) so
	// a fleet of coordinators never thunders in phase; ProbeSeed makes
	// the schedule reproducible.
	ProbeJitter float64
	ProbeSeed   int64

	// FailThreshold is how many CONSECUTIVE probe failures it takes to
	// mark an up member down (default 3). One slow probe under load must
	// not evict a healthy node; forward-path transport errors still mark
	// down immediately — a failed real request is stronger evidence than
	// a missed probe.
	FailThreshold int

	// MaxBodyBytes caps proxied request bodies (default 1 MiB).
	MaxBodyBytes int64

	// Client issues the forwarded requests and probes. The default has
	// NO flat timeout: every forwarded request runs under a per-request
	// context derived from its propagated deadline budget instead (a
	// flat client timeout both stalled short-deadline requests for the
	// full flat window and killed legitimately long watch streams).
	Client *http.Client

	// ForwardBudget is the time budget for a request that brings no
	// budget of its own — no limits.timeout_ms in the body and no
	// upstream X-Ptx-Deadline header (default 30s).
	ForwardBudget time.Duration
	// DeadlineGrace is the slack the coordinator grants itself beyond
	// the budget it propagates downstream (default 250ms): the worker
	// gets the budget, the coordinator waits budget+grace, so a worker
	// that answers typed at the wire still gets its answer relayed.
	DeadlineGrace time.Duration

	// HedgeDelay is how long an idempotent read (publish, watch
	// connect) waits on its primary before firing one hedged attempt at
	// the next preference-list member — first success wins, the loser
	// is canceled. 0 = auto (a quarter of the remaining budget, clamped
	// to [20ms, 2s]); negative disables hedging. Mutations are NEVER
	// hedged: a hedge duplicates work, and duplicated mutations would
	// race for sequence numbers on two nodes at once.
	HedgeDelay time.Duration

	// SyncTimeout bounds each join/catch-up control call — /sync,
	// /deltalog, /warm (default 5s). These run under the membership
	// write barrier, so without a bound a partitioned peer could stall
	// every mutation in the cluster.
	SyncTimeout time.Duration

	// Breaker parameterizes the per-member circuit breakers shared by
	// the forward path, the health prober and the mutation route. The
	// zero value picks defaults, with Cooldown tied to the probe
	// cadence (4×ProbeInterval, or 2s when probing is disabled).
	Breaker breaker.Config
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeJitter <= 0 {
		c.ProbeJitter = 0.2
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.ForwardBudget <= 0 {
		c.ForwardBudget = 30 * time.Second
	}
	if c.DeadlineGrace <= 0 {
		c.DeadlineGrace = 250 * time.Millisecond
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 5 * time.Second
	}
	if c.Breaker.Cooldown == 0 {
		if c.ProbeInterval > 0 {
			c.Breaker.Cooldown = 4 * c.ProbeInterval
		} else {
			c.Breaker.Cooldown = 2 * time.Second
		}
	}
	if c.Breaker.Seed == 0 {
		c.Breaker.Seed = c.ProbeSeed
	}
	return c
}

// member is one worker node as the coordinator sees it.
type member struct {
	id, url string
	up      bool
	fails   int       // consecutive failed probes
	next    time.Time // earliest next probe (backoff for down nodes)
}

// MemberStatus is the wire form of a member in /healthz.
type MemberStatus struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	Up  bool   `json:"up"`
	// Breaker is the member's circuit-breaker state ("closed", "open",
	// "half-open"); filled in Metrics snapshots only.
	Breaker string `json:"breaker,omitempty"`
}

// Metrics is a point-in-time snapshot of the coordinator's counters.
type Metrics struct {
	Epoch     uint64         `json:"epoch"`
	Members   []MemberStatus `json:"members"`
	Routed    int64          `json:"routed"`
	Failovers int64          `json:"failovers"` // attempts moved to a ring successor
	Deduped   int64          `json:"deduped"`   // followers served from a shared flight
	NoReady   int64          `json:"no_ready"`  // requests refused with no node up
	Warms     int64          `json:"warms"`     // warm-hint batches sent
	Mutations int64          `json:"mutations"` // mutations routed to a pair's owner
	Watches   int64          `json:"watches"`   // watch requests proxied

	Hedges       int64    `json:"hedges"`                 // hedged second attempts fired
	HedgeWins    int64    `json:"hedge_wins"`             // requests won by the hedged attempt
	BreakerOpens int64    `json:"breaker_opens"`          // closed→open breaker transitions
	BreakerOpen  []string `json:"breaker_open,omitempty"` // members currently open/half-open
}

// ErrNoReady is returned (as a transient, hence retryable, rejection)
// when every candidate node for a request is down.
var ErrNoReady = runctl.Transient(errors.New("cluster: no ready nodes"))

// Coordinator routes publish requests across worker nodes. Create with
// New, register nodes with Join (or let them self-register via /join),
// mount Handler, and Drain on shutdown.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	ring    *Ring
	members map[string]*member
	pairs   map[string][2]string // seen (spec, db) pairs, for warm hints
	mutDBs  map[string]bool      // databases that have taken mutations
	dbSeqs  map[string]uint64    // per-db ACKED sequence high-water marks
	flights map[string]*coordFlight

	// writeMu is the membership write barrier: mutations route under the
	// read side, joins and up-transitions take the write side while the
	// (re)joining node catches up on every mutated database's replicated
	// log. No mutation can commit concurrently with a catch-up, so a
	// node is only ever routable as a mutation owner when its log is a
	// contiguous prefix of the cluster's — the invariant that keeps
	// sequence numbers collision-free across failovers.
	writeMu sync.RWMutex

	// epoch is the cluster ownership epoch: bumped on every membership
	// or health transition, stamped on every routed request, carried by
	// every checkpoint write. A node that lost a run learns it through
	// the store fence, not through a message it might never receive.
	epoch atomic.Uint64

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	probeDone  chan struct{}
	warmWG     sync.WaitGroup

	// breakers holds one circuit breaker per member, shared by the
	// publish forward path, the mutation route, the watch proxy and the
	// health prober: every path contributes evidence, every path honors
	// the verdict (except mutations, which must reach their one owner
	// and therefore only FEED the breaker, never skip on it).
	breakers *breaker.Set

	routed    atomic.Int64
	failovers atomic.Int64
	deduped   atomic.Int64
	noReady   atomic.Int64
	warms     atomic.Int64
	mutations atomic.Int64
	watches   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
}

// New builds a coordinator and starts its health prober (unless
// probing is disabled).
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		ring:       NewRing(cfg.VNodes),
		members:    make(map[string]*member),
		pairs:      make(map[string][2]string),
		mutDBs:     make(map[string]bool),
		dbSeqs:     make(map[string]uint64),
		flights:    make(map[string]*coordFlight),
		baseCtx:    ctx,
		baseCancel: cancel,
		probeDone:  make(chan struct{}),
		breakers:   breaker.NewSet(cfg.Breaker),
	}
	if cfg.ProbeInterval > 0 {
		go c.probeLoop()
	} else {
		close(c.probeDone)
	}
	return c
}

// Join registers (or re-registers) a worker node and probes it once
// synchronously, so a node that joins ready serves the very next
// request. A reachable node is caught up on every mutated database's
// replicated log under the write barrier BEFORE it turns routable, and
// only turns routable if the catch-up actually CONVERGED — its log must
// reach the acked high-water mark of every mutated database, or it
// stays down for the prober to retry (consistency over availability: a
// stalled mutation beats a lost one). Either way the epoch is bumped:
// membership changed.
func (c *Coordinator) Join(id, url string) error {
	if id == "" || url == "" {
		return serve.Validationf("join", "missing id or url")
	}
	up := c.probeOne(url)
	c.mu.Lock()
	m, known := c.members[id]
	if !known {
		m = &member{id: id, url: url}
		c.members[id] = m
		c.ring.Add(id)
	}
	m.url = url
	m.up = false
	m.fails = 0
	m.next = time.Time{}
	c.mu.Unlock()
	// An explicit (re)join is an operator-grade signal: reset whatever
	// breaker history the previous incarnation accumulated.
	c.breakers.Success(id)
	if up {
		c.writeMu.Lock()
		up = c.syncMember(id, url)
		if up {
			c.mu.Lock()
			m.up = true
			c.mu.Unlock()
		}
		c.writeMu.Unlock()
	}
	c.epoch.Add(1)
	if up {
		c.sendWarmHints(id, url)
	}
	return nil
}

// syncMember runs the join-time catch-up: for every database that has
// taken mutations, the (re)joining node syncs bidirectionally (POST
// node/sync) with EVERY up peer — the first peer in ring order may
// itself be behind, so one pull is not convergence. The caller holds
// writeMu, so no mutation commits while logs converge. It returns
// whether the node's log reached every database's acked high-water
// mark; a false return means some acked record is not yet on this node
// (peers holding it unreachable, or the node's own WAL faulting) and
// the node must NOT take ownership yet.
func (c *Coordinator) syncMember(id, url string) bool {
	c.mu.Lock()
	want := make(map[string]uint64, len(c.mutDBs))
	for db := range c.mutDBs {
		want[db] = c.dbSeqs[db]
	}
	c.mu.Unlock()
	converged := true
	for db, hw := range want {
		for _, m := range c.mutatePreference(db) {
			if m.ID == id {
				continue
			}
			c.postSync(url, db, m.URL)
		}
		if c.memberSeq(url, db) < hw {
			converged = false
		}
	}
	return converged
}

// postSync asks the node at url to run one bidirectional catch-up round
// against peer for db. Best-effort: a failed round leaves convergence
// to the remaining peers and the final high-water check.
func (c *Coordinator) postSync(url, db, peer string) {
	payload, err := json.Marshal(struct {
		DB   string `json:"db"`
		Peer string `json:"peer"`
	}{db, peer})
	if err != nil {
		return
	}
	// Bounded: this runs under the membership write barrier, and an
	// unbounded call to a partitioned peer would stall every mutation.
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.SyncTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/sync", bytes.NewReader(payload))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// memberSeq reads a node's committed sequence mark for db (0 on any
// failure — an unreadable node is treated as maximally behind).
func (c *Coordinator) memberSeq(nodeURL, db string) uint64 {
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.SyncTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		nodeURL+"/deltalog?db="+neturl.QueryEscape(db), nil)
	if err != nil {
		return 0
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var dl struct {
		Seq uint64 `json:"seq"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&dl) != nil {
		return 0
	}
	return dl.Seq
}

// recordAck advances a database's acked sequence high-water mark — the
// convergence bar a rejoining node must clear before it can own
// mutations again.
func (c *Coordinator) recordAck(db string, seq uint64) {
	c.mu.Lock()
	if seq > c.dbSeqs[db] {
		c.dbSeqs[db] = seq
	}
	c.mu.Unlock()
}

// mutatePreference snapshots the up members of a database's mutation
// preference list. Mutations route by DATABASE alone — not (spec, db)
// like publishes — so exactly one node assigns sequence numbers for a
// database no matter how many specs publish it.
func (c *Coordinator) mutatePreference(db string) []MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	if db != "" && len(c.mutDBs) < 4096 {
		c.mutDBs[db] = true
	}
	ids := c.ring.Prefer("mutate\x00"+db, len(c.members))
	out := make([]MemberStatus, 0, len(ids))
	for _, id := range ids {
		if m := c.members[id]; m.up {
			out = append(out, MemberStatus{ID: m.id, URL: m.url, Up: true})
		}
	}
	return out
}

// Metrics snapshots the counters and membership.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	members := make([]MemberStatus, 0, len(c.members))
	for _, id := range c.ring.Members() {
		m := c.members[id]
		members = append(members, MemberStatus{
			ID: m.id, URL: m.url, Up: m.up,
			Breaker: c.breakers.State(m.id).String(),
		})
	}
	c.mu.Unlock()
	return Metrics{
		Epoch:        c.epoch.Load(),
		Members:      members,
		Routed:       c.routed.Load(),
		Failovers:    c.failovers.Load(),
		Deduped:      c.deduped.Load(),
		NoReady:      c.noReady.Load(),
		Warms:        c.warms.Load(),
		Mutations:    c.mutations.Load(),
		Watches:      c.watches.Load(),
		Hedges:       c.hedges.Load(),
		HedgeWins:    c.hedgeWins.Load(),
		BreakerOpens: c.breakers.Opens(),
		BreakerOpen:  c.breakers.OpenPeers(),
	}
}

// Epoch returns the current ownership epoch.
func (c *Coordinator) Epoch() uint64 { return c.epoch.Load() }

// Drain stops admitting publishes (readyz flips to 503), stops the
// prober, cancels in-flight forwards, and waits for the warm-hint
// senders to finish.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.draining.Store(true)
	c.baseCancel()
	select {
	case <-c.probeDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	done := make(chan struct{})
	go func() { c.warmWG.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close releases resources without the drain protocol (tests).
func (c *Coordinator) Close() {
	c.draining.Store(true)
	c.baseCancel()
	<-c.probeDone
	c.warmWG.Wait()
}

// Handler returns the coordinator's routes: POST /publish (routed),
// POST /mutate (routed to the database's owner, which replicates to
// its successors before acking — see mutate.go),
// GET /watch (stream-proxied to the pair's owner),
// POST /join ({"id":…,"url":…}), GET /healthz, GET /readyz.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/publish", c.handlePublish)
	mux.HandleFunc("/mutate", c.handleMutate)
	mux.HandleFunc("/watch", c.handleWatch)
	mux.HandleFunc("/join", c.handleJoin)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/readyz", c.handleReadyz)
	return mux
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, serve.Validationf("body", "%v", err))
		return
	}
	if err := c.Join(req.ID, req.URL); err != nil {
		serve.WriteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Epoch   uint64   `json:"epoch"`
		Members []string `json:"members"`
	}{c.epoch.Load(), c.membersSnapshot()})
}

func (c *Coordinator) membersSnapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Members()
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Status   string  `json:"status"`
		Draining bool    `json:"draining"`
		Metrics  Metrics `json:"metrics"`
	}{"ok", c.draining.Load(), c.Metrics()})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		serve.WriteError(w, serve.ErrDraining)
		return
	}
	if !c.anyUp() {
		serve.WriteError(w, ErrNoReady)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, `{"status":"ready"}`+"\n")
}

func (c *Coordinator) anyUp() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.up {
			return true
		}
	}
	return false
}

// coordFlight is the coordinator-level singleflight: concurrent
// byte-identical requests share one routed execution (and therefore one
// worker-side run), so a thundering herd cannot amplify through the
// proxy. The shared value is the fully buffered upstream response.
type coordFlight struct {
	done   chan struct{}
	status int
	header http.Header
	body   []byte
}

func (c *Coordinator) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if c.draining.Load() {
		serve.WriteError(w, serve.ErrDraining)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			serve.WriteError(w, mbe)
			return
		}
		serve.WriteError(w, serve.Validationf("body", "%v", err))
		return
	}

	// The run key doubles as the dedup key: byte-identical bodies are
	// one logical run, cluster-wide.
	sum := sha256.Sum256(body)
	runKey := hex.EncodeToString(sum[:])

	// Resolve the request's time budget BEFORE routing: an upstream
	// hop's X-Ptx-Deadline wins (we are mid-chain and must only ever
	// shrink), then the body's own limits.timeout_ms, then the default.
	hdrBudget, hasHdr, derr := serve.ParseDeadline(r.Header)
	if derr != nil {
		serve.WriteError(w, derr)
		return
	}
	_, _, bodyMS := routingPair(body)
	budget := c.cfg.ForwardBudget
	switch {
	case hasHdr:
		budget = hdrBudget
	case bodyMS > 0:
		budget = time.Duration(bodyMS) * time.Millisecond
	}

	c.mu.Lock()
	if f, ok := c.flights[runKey]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			c.deduped.Add(1)
			c.reply(w, f, true)
		case <-r.Context().Done():
			serve.WriteError(w, &runctl.ErrCanceled{Cause: r.Context().Err()})
		}
		return
	}
	f := &coordFlight{done: make(chan struct{})}
	c.flights[runKey] = f
	c.mu.Unlock()

	// The leader of a dedup flight forwards under budget+grace: the
	// worker gets the budget (via the propagated deadline header), the
	// extra grace covers relaying an answer that was typed at the wire.
	ctx, cancel := context.WithDeadline(c.baseCtx, time.Now().Add(budget+c.cfg.DeadlineGrace))
	f.status, f.header, f.body = c.forward(ctx, time.Now().Add(budget), body, runKey)
	cancel()
	c.mu.Lock()
	delete(c.flights, runKey)
	c.mu.Unlock()
	close(f.done)
	c.reply(w, f, false)
}

// reply writes a (possibly shared) buffered upstream response.
func (c *Coordinator) reply(w http.ResponseWriter, f *coordFlight, shared bool) {
	h := w.Header()
	copyProxyHeaders(h, f.header)
	h.Set("X-Ptcoord-Shared", strconv.FormatBool(shared))
	w.WriteHeader(f.status)
	_, _ = w.Write(f.body)
}

// attempt forwards the body to one member, stamping the handoff
// coordinates. The epoch is read per-attempt: a failover bumps it, so
// the successor's request carries strictly more authority than the
// attempt that just failed. The remaining budget rides along as the
// propagated deadline, and the response is integrity-checked against
// the worker's checksum trailer — corruption or truncation surfaces
// here as a transport error, which is precisely what lets the caller
// fail over instead of relaying wrong bytes.
func (c *Coordinator) attempt(ctx context.Context, m MemberStatus, body []byte, runKey string, budgetDeadline time.Time) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.URL+"/publish", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.HeaderRunKey, runKey)
	req.Header.Set(serve.HeaderEpoch, strconv.FormatUint(c.epoch.Load(), 10))
	req.Header.Set(serve.HeaderDeadline, serve.FormatDeadline(time.Until(budgetDeadline)))
	req.Header.Set(serve.HeaderWantSum, "1")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	if err := serve.VerifySum(resp, respBody); err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header.Clone(), respBody, nil
}

// rlockWithin acquires the membership write barrier's read side, but
// gives up when ctx dies first: a mutation that cannot get past a
// stalled catch-up within its deadline budget fails typed instead of
// queueing forever. The helper goroutine unlocks on abandonment, so
// the barrier is never left held.
func (c *Coordinator) rlockWithin(ctx context.Context) bool {
	got := make(chan struct{}, 1)
	go func() {
		c.writeMu.RLock()
		got <- struct{}{}
	}()
	select {
	case <-got:
		return true
	case <-ctx.Done():
		// The acquisition may still land after we give up; hand the
		// lock straight back when it does. Bounded: every writer holds
		// the barrier for at most the SyncTimeout-bounded catch-up.
		go func() {
			<-got
			c.writeMu.RUnlock()
		}()
		return false
	}
}

// preference snapshots the up members of a key's preference list and
// remembers the (spec, db) pair for warm hints.
func (c *Coordinator) preference(pairKey string) []MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pairs[pairKey]; !ok && len(c.pairs) < 4096 {
		var spec, db string
		if i := bytes.IndexByte([]byte(pairKey), 0); i >= 0 {
			spec, db = pairKey[:i], pairKey[i+1:]
		}
		if spec != "" && db != "" {
			c.pairs[pairKey] = [2]string{spec, db}
		}
	}
	ids := c.ring.Prefer(pairKey, len(c.members))
	out := make([]MemberStatus, 0, len(ids))
	for _, id := range ids {
		if m := c.members[id]; m.up {
			out = append(out, MemberStatus{ID: m.id, URL: m.url, Up: true})
		}
	}
	return out
}

// markDown transitions a member to down and bumps the epoch; a no-op
// if it was already down (no spurious epoch churn).
func (c *Coordinator) markDown(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok || !m.up {
		return
	}
	m.up = false
	m.fails = 1
	m.next = time.Now().Add(c.cfg.ProbeInterval)
	c.epoch.Add(1)
}

// markUp transitions a member to up, bumps the epoch, and sends it
// warm hints for the pairs it is about to own. The up-flip happens
// under the write barrier AFTER the node catches up on the replicated
// mutation logs — a recovered node re-enters rotation post-delta, never
// with a stale log it could assign colliding sequence numbers from. A
// node whose catch-up does not reach every database's acked high-water
// mark stays down (with a probe backoff) and is retried: promoting it
// would let it reassign sequence numbers acked deltas already hold.
func (c *Coordinator) markUp(id string) {
	c.mu.Lock()
	m, ok := c.members[id]
	if !ok {
		c.mu.Unlock()
		return
	}
	if m.up {
		// Already up: a good probe forgives accumulated sub-threshold
		// failures, so only CONSECUTIVE misses can evict.
		m.fails = 0
		m.next = time.Time{}
		c.mu.Unlock()
		return
	}
	url := m.url
	c.mu.Unlock()

	c.writeMu.Lock()
	converged := c.syncMember(id, url)
	c.mu.Lock()
	if converged {
		m.up = true
		m.fails = 0
		m.next = time.Time{}
		c.epoch.Add(1)
	} else {
		m.next = time.Now().Add(c.cfg.ProbeInterval)
	}
	c.mu.Unlock()
	c.writeMu.Unlock()
	if converged {
		c.sendWarmHints(id, url)
	}
}

// sendWarmHints asynchronously primes a node's registry with every
// (spec, db) pair this coordinator has routed, so a rebalanced key's
// first request does not pay compilation latency. Best-effort: a hint
// that fails changes nothing but warmth.
func (c *Coordinator) sendWarmHints(id, url string) {
	c.mu.Lock()
	pairs := make([][2]string, 0, len(c.pairs))
	for _, p := range c.pairs {
		pairs = append(pairs, p)
	}
	c.mu.Unlock()
	if len(pairs) == 0 {
		return
	}
	c.warmWG.Add(1)
	go func() {
		defer c.warmWG.Done()
		payload, err := json.Marshal(struct {
			Pairs [][2]string `json:"pairs"`
		}{pairs})
		if err != nil {
			return
		}
		ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.SyncTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/warm", bytes.NewReader(payload))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		c.warms.Add(1)
	}()
}

// routingPair extracts the (spec, db) routing key and the request's own
// timeout_ms (the seed of its deadline budget) from a request body.
// The parse is deliberately loose — a malformed body still routes (by
// empty pair) to SOME node, whose strict validator then produces the
// typed 400 the client expects; the coordinator never duplicates the
// worker's validation logic.
func routingPair(body []byte) (spec, db string, timeoutMS int64) {
	var req struct {
		Spec   string `json:"spec"`
		DB     string `json:"db"`
		Limits struct {
			TimeoutMS int64 `json:"timeout_ms"`
		} `json:"limits"`
	}
	_ = json.Unmarshal(body, &req)
	return req.Spec, req.DB, req.Limits.TimeoutMS
}

// errorKind extracts the wire-schema kind from an error body ("" when
// the body is not the schema).
func errorKind(body []byte) string {
	var eb struct {
		Error struct {
			Kind string `json:"kind"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &eb) != nil {
		return ""
	}
	return eb.Error.Kind
}

// buffered renders a coordinator-origin error through the same stable
// schema the workers use.
func buffered(err error) (int, http.Header, []byte) {
	rec := newRecorder()
	serve.WriteError(rec, err)
	return rec.status, rec.header, rec.buf.Bytes()
}

// recorder is a minimal ResponseWriter for rendering error bodies into
// a coordFlight without importing httptest outside tests.
type recorder struct {
	status int
	header http.Header
	buf    bytes.Buffer
}

func newRecorder() *recorder { return &recorder{status: http.StatusOK, header: make(http.Header)} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(status int)      { r.status = status }
func (r *recorder) Write(p []byte) (int, error) { return r.buf.Write(p) }
