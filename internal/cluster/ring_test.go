package cluster

import (
	"fmt"
	"testing"
)

func ringOf(nodes ...string) *Ring {
	r := NewRing(64)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// TestRingDeterminism: two independently built rings with the same
// membership route every key identically — coordinators never need to
// gossip routing tables.
func TestRingDeterminism(t *testing.T) {
	a := ringOf("n1", "n2", "n3")
	b := ringOf("n3", "n1", "n2") // insertion order must not matter
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("spec-%d\x00db-%d", i, i%7)
		pa, pb := a.Prefer(key, 3), b.Prefer(key, 3)
		if len(pa) != 3 || len(pb) != 3 {
			t.Fatalf("key %q: preference lists %v / %v, want length 3", key, pa, pb)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("key %q: rings disagree: %v vs %v", key, pa, pb)
			}
		}
	}
}

// TestRingBalance: with 64 vnodes each, a 3-node ring splits 3000 keys
// with no node owning less than half its fair share.
func TestRingBalance(t *testing.T) {
	r := ringOf("n1", "n2", "n3")
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range r.Members() {
		if counts[n] < keys/6 {
			t.Fatalf("node %s owns %d/%d keys — ring is badly unbalanced: %v", n, counts[n], keys, counts)
		}
	}
}

// TestRingStability: removing one node moves ONLY the keys it owned;
// every other key keeps its owner. This is the property that makes
// failover cheap — a kill invalidates one node's cache locality, not
// the cluster's.
func TestRingStability(t *testing.T) {
	r := ringOf("n1", "n2", "n3")
	before := map[string]string{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k)
	}
	r.Remove("n2")
	for k, owner := range before {
		got := r.Owner(k)
		if owner == "n2" {
			if got == "n2" || got == "" {
				t.Fatalf("key %q: removed node still owns it (got %q)", k, got)
			}
			continue
		}
		if got != owner {
			t.Fatalf("key %q: owner moved %q → %q though %q was not removed", k, owner, got, owner)
		}
	}
}

// TestRingPreference: the preference list is the failover order — the
// owner first, distinct successors after, and removing the owner
// promotes exactly the second entry.
func TestRingPreference(t *testing.T) {
	r := ringOf("n1", "n2", "n3", "n4")
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		p := r.Prefer(k, 4)
		if len(p) != 4 {
			t.Fatalf("key %q: preference %v, want all 4 members", k, p)
		}
		seen := map[string]bool{}
		for _, n := range p {
			if seen[n] {
				t.Fatalf("key %q: duplicate member in preference %v", k, p)
			}
			seen[n] = true
		}
		if p[0] != r.Owner(k) {
			t.Fatalf("key %q: Prefer[0]=%q but Owner=%q", k, p[0], r.Owner(k))
		}
	}
	k := "promote-me"
	p := r.Prefer(k, 2)
	r.Remove(p[0])
	if got := r.Owner(k); got != p[1] {
		t.Fatalf("after removing owner %q: new owner %q, want promoted successor %q", p[0], got, p[1])
	}
}

// TestRingEdges: empty ring and over-asking behave predictably.
func TestRingEdges(t *testing.T) {
	r := NewRing(0)
	if got := r.Prefer("k", 3); got != nil {
		t.Fatalf("empty ring Prefer = %v, want nil", got)
	}
	if r.Owner("k") != "" {
		t.Fatal("empty ring has an owner")
	}
	r.Add("solo")
	r.Add("solo") // idempotent
	if got := r.Prefer("k", 5); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("Prefer over-ask = %v, want [solo]", got)
	}
	r.Remove("ghost") // unknown: no-op
	if m := r.Members(); len(m) != 1 {
		t.Fatalf("members = %v", m)
	}
}
