package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ptx/internal/runctl"
	"ptx/internal/serve"
)

// Cluster mutations and watches.
//
// Deltas are durable and replicated. Mutations route by DATABASE (not
// the (spec, db) pair publishes use) to the db's ring owner, which is
// the single sequence-number authority for that database. The
// coordinator stamps each forwarded mutation with the cluster epoch
// (fencing zombie owners at the worker's registry) and with the
// database's up successors; the owner appends+fsyncs the delta to its
// WAL, applies it, then synchronously replicates it to every named
// successor BEFORE acknowledging. When the client hears 200 the delta
// is durable on the owner and live on every reachable node.
//
// Failover therefore serves POST-delta bytes: if the owner dies, it is
// marked down (bumping the epoch, which re-homes the database), the
// client gets a transient retryable error, and the retry lands on a
// successor that already holds the replicated log — see
// TestClusterMutateOwnerLossServesPostDelta. A successor that somehow
// missed a record answers the replication protocol's gap reply and is
// resent the tail; a rejoining node is caught up under the
// coordinator's write barrier before it can own mutations again.
//
// Watches are read-only and fail over freely — replication repairs the
// live views on every node, so a watcher re-parked on a successor sees
// the same change stream. A successor's view has its own version
// numbering, and the worker-side protocol absorbs the cursor jump: a
// long-poll cursor beyond the new view's history returns
// complete=false, and SSE replies with a resync event.

// ErrOwnerDown is returned for a mutation whose owning node could not
// be reached. Transient and hence retryable: the failed attempt marked
// the owner down, so a retry routes to the database's new owner — which
// holds the replicated log and serves post-delta bytes.
var ErrOwnerDown = runctl.Transient(errors.New("cluster: mutation owner unreachable; retry routes to its successor"))

// replicasHeader renders the successor set (everything after the owner
// in the preference list, capped by Replicas-1 when Replicas bounds the
// write fan-out) in the id=url,... wire form.
func (c *Coordinator) replicasHeader(prefs []MemberStatus) string {
	reps := prefs[1:]
	if c.cfg.Replicas > 0 && len(reps) > c.cfg.Replicas-1 {
		reps = reps[:c.cfg.Replicas-1]
	}
	parts := make([]string, len(reps))
	for i, m := range reps {
		parts[i] = m.ID + "=" + m.URL
	}
	return strings.Join(parts, ",")
}

func (c *Coordinator) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if c.draining.Load() {
		serve.WriteError(w, serve.ErrDraining)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			serve.WriteError(w, mbe)
			return
		}
		serve.WriteError(w, serve.Validationf("body", "%v", err))
		return
	}
	// Resolve the mutation's deadline budget: the upstream hop's header
	// if it sent one, else the configured default. The coordinator
	// waits budget+grace; the owner hears the raw budget.
	budget := c.cfg.ForwardBudget
	if d, ok, derr := serve.ParseDeadline(r.Header); derr != nil {
		serve.WriteError(w, derr)
		return
	} else if ok {
		budget = d
	}
	budgetDeadline := time.Now().Add(budget)
	ctx, cancel := context.WithDeadline(c.baseCtx, budgetDeadline.Add(c.cfg.DeadlineGrace))
	defer cancel()

	// Mutations hold the membership read barrier: a join's catch-up
	// sync (write side) never interleaves with a commit, so a rejoined
	// node's log is complete before it can own a database. The
	// acquisition itself is deadline-bounded — a stalled catch-up must
	// stall this mutation only as long as its budget allows.
	if !c.rlockWithin(ctx) {
		serve.WriteError(w, &runctl.ErrCanceled{Cause: context.DeadlineExceeded})
		return
	}
	defer c.writeMu.RUnlock()
	_, db, _ := routingPair(body)
	prefs := c.mutatePreference(db)
	if len(prefs) == 0 {
		c.noReady.Add(1)
		serve.WriteError(w, ErrNoReady)
		return
	}
	c.mutations.Add(1)

	// Owner only — never replay a possibly-landed delta on a successor
	// ourselves; the owner's synchronous replication is what moves the
	// delta, and the client's retry (post epoch bump) is what moves the
	// ownership. The owner's breaker is FED here but never consulted to
	// skip: there is no second node a mutation may safely try.
	owner := prefs[0]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner.URL+"/mutate", bytes.NewReader(body))
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.HeaderEpoch, strconv.FormatUint(c.epoch.Load(), 10))
	req.Header.Set(serve.HeaderDeadline, serve.FormatDeadline(time.Until(budgetDeadline)))
	req.Header.Set(serve.HeaderWantSum, "1")
	if reps := c.replicasHeader(prefs); reps != "" {
		req.Header.Set(serve.HeaderReplicas, reps)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The budget died, not the owner: no evidence against the
			// node, and the delta's fate is unknown — fail typed so the
			// client decides whether to retry.
			serve.WriteError(w, &runctl.ErrCanceled{Cause: context.DeadlineExceeded})
			return
		}
		c.breakers.Failure(owner.ID)
		c.markDown(owner.ID)
		serve.WriteError(w, ErrOwnerDown)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err == nil {
		err = serve.VerifySum(resp, respBody)
	}
	if err != nil {
		if ctx.Err() != nil {
			serve.WriteError(w, &runctl.ErrCanceled{Cause: context.DeadlineExceeded})
			return
		}
		c.breakers.Failure(owner.ID)
		c.markDown(owner.ID)
		serve.WriteError(w, ErrOwnerDown)
		return
	}
	c.breakers.Success(owner.ID)
	if resp.StatusCode == http.StatusServiceUnavailable && errorKind(respBody) == serve.KindDraining {
		// The owner is shutting down and never applied the delta; its
		// successor owns the database now, so the retry story is the
		// same as a transport death.
		c.markDown(owner.ID)
		serve.WriteError(w, ErrOwnerDown)
		return
	}
	// A replica that failed to confirm is suspect: mark it down so the
	// prober re-admits it only through the catch-up sync.
	if failed := resp.Header.Get(serve.HeaderReplicaFailed); failed != "" {
		for _, id := range strings.Split(failed, ",") {
			c.markDown(id)
		}
	}
	// A 200 means the delta is durable on the owner AND confirmed on
	// every named successor: its sequence number becomes the database's
	// acked high-water mark, the convergence bar for rejoining nodes.
	if resp.StatusCode == http.StatusOK {
		var ack struct {
			Seq uint64 `json:"seq"`
		}
		if json.Unmarshal(respBody, &ack) == nil && ack.Seq > 0 {
			c.recordAck(db, ack.Seq)
		}
	}
	copyProxyHeaders(w.Header(), resp.Header)
	w.Header().Set("X-Ptcoord-Attempts", "1")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(respBody)
}

func (c *Coordinator) handleWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if c.draining.Load() {
		serve.WriteError(w, serve.ErrDraining)
		return
	}
	q := r.URL.Query()
	prefs := c.preference(q.Get("spec") + "\x00" + q.Get("db"))
	if len(prefs) == 0 {
		c.noReady.Add(1)
		serve.WriteError(w, ErrNoReady)
		return
	}
	c.watches.Add(1)

	// The upstream request dies with the watcher's connection OR the
	// coordinator's drain, whichever comes first — a drain must release
	// proxied long-polls and SSE streams just like the worker releases
	// its own parked watchers.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(c.baseCtx, cancel)
	defer stop()

	if c.cfg.Replicas > 0 && c.cfg.Replicas < len(prefs) {
		prefs = prefs[:c.cfg.Replicas]
	}
	// The CONNECT phase is hedged (idempotent until the first byte is
	// relayed); the stream itself is not. A draining node is reported
	// through errWatchDraining so the race moves on without blaming the
	// network; any other 503 is a real answer the watcher should see.
	connect := func(cctx context.Context, m MemberStatus) (*http.Response, error) {
		req, err := http.NewRequestWithContext(cctx, http.MethodGet, m.URL+"/watch?"+r.URL.RawQuery, nil)
		if err != nil {
			return nil, err
		}
		if a := r.Header.Get("Accept"); a != "" {
			req.Header.Set("Accept", a)
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if errorKind(b) == serve.KindDraining {
				return nil, errWatchDraining
			}
			resp.Body = io.NopCloser(bytes.NewReader(b))
			resp.ContentLength = int64(len(b))
		}
		return resp, nil
	}
	res, fails, ok := c.hedgedWatch(ctx, prefs, connect)
	if !ok {
		if ctx.Err() != nil {
			// The watcher hung up or the coordinator is draining; the
			// nodes did nothing wrong.
			return
		}
		c.noReady.Add(1)
		serve.WriteError(w, ErrNoReady)
		return
	}
	defer res.cancel()
	if res.hedged {
		w.Header().Set("X-Ptcoord-Hedged", "true")
	}
	c.streamReply(w, res.resp, fails+1)
}

// streamReply proxies an upstream response without buffering, flushing
// after every chunk so proxied SSE events reach the watcher as they
// happen rather than when the stream ends.
func (c *Coordinator) streamReply(w http.ResponseWriter, resp *http.Response, attempts int) {
	defer resp.Body.Close()
	copyProxyHeaders(w.Header(), resp.Header)
	c.stampAttempts(w.Header(), attempts)
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		// Push the headers out now: an SSE watcher must see the stream
		// open before the first event, not when the first event lands.
		fl.Flush()
	}
	buf := make([]byte, 4<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (c *Coordinator) stampAttempts(h http.Header, attempts int) {
	if attempts > 1 {
		h.Set("X-Ptcoord-Failover", "true")
	}
	h.Set("X-Ptcoord-Attempts", strconv.Itoa(attempts))
}

// copyProxyHeaders forwards upstream headers minus the hop-by-hop and
// length-bearing ones the proxy must own — including the integrity
// trailer machinery, which is a per-hop contract: the coordinator
// verified the worker's sum; advertising it onward would promise a
// trailer this hop never sends.
func copyProxyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch k {
		case "Content-Length", "Connection", "Transfer-Encoding", "Date",
			"Trailer", serve.HeaderBodySum, serve.HeaderWantSum:
		default:
			dst[k] = vs
		}
	}
}
