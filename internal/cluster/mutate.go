package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"

	"ptx/internal/runctl"
	"ptx/internal/serve"
)

// Cluster mutations and watches.
//
// Deltas are node-local: each worker keeps its own registry delta log,
// so a mutation is visible only on the node that applied it. The
// coordinator therefore routes /mutate with the SAME preference list
// /publish uses — the pair's owner sees both the writes and the reads,
// and single-node coherence (every publish is pre- or post-delta bytes,
// never torn) extends to the routed path. Two consequences are
// deliberate, and documented rather than hidden:
//
//   - No automatic mutation failover. If the owner dies mid-request the
//     coordinator cannot know whether the delta landed, and replaying
//     it on a ring successor would fork the per-node logs. The owner is
//     marked down (bumping the epoch, which re-homes the pair) and the
//     client gets a transient, retryable error; its retry lands on the
//     new owner and the log stays linear per serving node.
//   - A failed-over pair serves PRE-delta state. The successor rebuilds
//     from its own registry, which never saw the dead owner's delta
//     log. Cross-node log replication is out of scope for this tier;
//     the epoch bump at least makes the regression observable, and
//     TestClusterMutateOwnerLossServesPreDelta pins the behavior.
//
// Watches are read-only, so they DO fail over — but a successor's view
// has its own version numbering, and a cursor taken on one node is
// meaningless on another. The worker-side protocol already absorbs
// this: a long-poll cursor beyond the new view's history returns
// complete=false, and SSE replies with a resync event.

// ErrOwnerDown is returned for a mutation whose owning node could not
// be reached. Transient and hence retryable: the failed attempt marked
// the owner down, so a retry routes to the pair's new owner.
var ErrOwnerDown = runctl.Transient(errors.New("cluster: pair owner unreachable; retry routes to its successor"))

func (c *Coordinator) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if c.draining.Load() {
		serve.WriteError(w, serve.ErrDraining)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			serve.WriteError(w, mbe)
			return
		}
		serve.WriteError(w, serve.Validationf("body", "%v", err))
		return
	}
	spec, db := routingPair(body)
	prefs := c.preference(spec + "\x00" + db)
	if len(prefs) == 0 {
		c.noReady.Add(1)
		serve.WriteError(w, ErrNoReady)
		return
	}
	c.mutations.Add(1)

	// Owner only — no failover walk (see the package comment above).
	owner := prefs[0]
	req, err := http.NewRequestWithContext(c.baseCtx, http.MethodPost, owner.URL+"/mutate", bytes.NewReader(body))
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.HeaderEpoch, strconv.FormatUint(c.epoch.Load(), 10))
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.markDown(owner.ID)
		serve.WriteError(w, ErrOwnerDown)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		c.markDown(owner.ID)
		serve.WriteError(w, ErrOwnerDown)
		return
	}
	if resp.StatusCode == http.StatusServiceUnavailable && errorKind(respBody) == serve.KindDraining {
		// The owner is shutting down and never applied the delta; its
		// successor owns the pair now, so the retry story is the same as
		// a transport death.
		c.markDown(owner.ID)
		serve.WriteError(w, ErrOwnerDown)
		return
	}
	copyProxyHeaders(w.Header(), resp.Header)
	w.Header().Set("X-Ptcoord-Attempts", "1")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(respBody)
}

func (c *Coordinator) handleWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if c.draining.Load() {
		serve.WriteError(w, serve.ErrDraining)
		return
	}
	q := r.URL.Query()
	prefs := c.preference(q.Get("spec") + "\x00" + q.Get("db"))
	if len(prefs) == 0 {
		c.noReady.Add(1)
		serve.WriteError(w, ErrNoReady)
		return
	}
	c.watches.Add(1)

	// The upstream request dies with the watcher's connection OR the
	// coordinator's drain, whichever comes first — a drain must release
	// proxied long-polls and SSE streams just like the worker releases
	// its own parked watchers.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(c.baseCtx, cancel)
	defer stop()

	tried := 0
	for _, m := range prefs {
		if c.cfg.Replicas > 0 && tried >= c.cfg.Replicas {
			break
		}
		tried++
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/watch?"+r.URL.RawQuery, nil)
		if err != nil {
			serve.WriteError(w, err)
			return
		}
		if a := r.Header.Get("Accept"); a != "" {
			req.Header.Set("Accept", a)
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				// The watcher hung up or the coordinator is draining; the
				// node did nothing wrong.
				return
			}
			c.markDown(m.ID)
			c.failovers.Add(1)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if errorKind(b) == serve.KindDraining {
				c.markDown(m.ID)
				c.failovers.Add(1)
				continue
			}
			copyProxyHeaders(w.Header(), resp.Header)
			c.stampAttempts(w.Header(), tried)
			w.WriteHeader(resp.StatusCode)
			_, _ = w.Write(b)
			return
		}
		c.streamReply(w, resp, tried)
		return
	}
	c.noReady.Add(1)
	serve.WriteError(w, ErrNoReady)
}

// streamReply proxies an upstream response without buffering, flushing
// after every chunk so proxied SSE events reach the watcher as they
// happen rather than when the stream ends.
func (c *Coordinator) streamReply(w http.ResponseWriter, resp *http.Response, attempts int) {
	defer resp.Body.Close()
	copyProxyHeaders(w.Header(), resp.Header)
	c.stampAttempts(w.Header(), attempts)
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		// Push the headers out now: an SSE watcher must see the stream
		// open before the first event, not when the first event lands.
		fl.Flush()
	}
	buf := make([]byte, 4<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (c *Coordinator) stampAttempts(h http.Header, attempts int) {
	if attempts > 1 {
		h.Set("X-Ptcoord-Failover", "true")
	}
	h.Set("X-Ptcoord-Attempts", strconv.Itoa(attempts))
}

// copyProxyHeaders forwards upstream headers minus the hop-by-hop and
// length-bearing ones the proxy must own.
func copyProxyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch k {
		case "Content-Length", "Connection", "Transfer-Encoding", "Date":
		default:
			dst[k] = vs
		}
	}
}
