package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptx/internal/serve"
	"ptx/internal/testutil"
)

// TestClusterRoutesGolden: a routed publish returns the exact bytes a
// direct run produces, lands on the key's ring owner, and repeats land
// on the SAME node (stable routing → cache locality).
func TestClusterRoutesGolden(t *testing.T) {
	coord, cts, nodes := newTestCluster(t, 3, Config{ProbeInterval: -1})
	want := goldenXML(t)

	status, hdr, body := postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("routed bytes differ from golden:\n got %q\nwant %q", body, want)
	}
	first := hdr.Get("X-Ptserve-Node")
	if first == "" {
		t.Fatal("response lost the X-Ptserve-Node header in transit")
	}
	if got := hdr.Get("X-Ptcoord-Attempts"); got != "1" {
		t.Fatalf("X-Ptcoord-Attempts = %q, want 1 (no failover on a healthy ring)", got)
	}
	if owner := coord.ring.Owner("tiny\x00tinydb"); owner != first {
		t.Fatalf("request served by %q but ring owner is %q", first, owner)
	}
	for i := 0; i < 3; i++ {
		_, hdr, _ := postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
		if got := hdr.Get("X-Ptserve-Node"); got != first {
			t.Fatalf("repeat %d routed to %q, first went to %q", i, got, first)
		}
	}
	total := int64(0)
	for _, n := range nodes {
		total += n.hits.Load()
	}
	if total != 4 {
		t.Fatalf("nodes saw %d publishes, want 4 (no duplicate forwards)", total)
	}
}

// TestClusterErrorPassthrough: the single-node JSON error schema
// survives the proxy verbatim for every error class a worker can emit.
func TestClusterErrorPassthrough(t *testing.T) {
	_, cts, _ := newTestCluster(t, 3, Config{ProbeInterval: -1})
	cases := []struct {
		name, body, wantKind string
	}{
		{"unknown spec", `{"spec":"ghost","db":"tinydb"}`, serve.KindValidation},
		{"malformed body", `{"spec":`, serve.KindValidation},
		{"unknown field", `{"spec":"tiny","db":"tinydb","bogus":1}`, serve.KindValidation},
		{"budget", `{"spec":"tiny","db":"tinydb","limits":{"max_nodes":2}}`, serve.KindBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := postCluster(t, cts, tc.body)
			if kind := decodeClusterError(t, status, body); kind != tc.wantKind {
				t.Fatalf("kind %q, want %q (%s)", kind, tc.wantKind, body)
			}
		})
	}
}

// TestClusterFailover: killing the owner node mid-cluster re-routes
// the request to its ring successor with the epoch bumped — the
// successor's first request already carries checkpoint authority over
// the dead node's writes.
func TestClusterFailover(t *testing.T) {
	coord, cts, nodes := newTestCluster(t, 3, Config{ProbeInterval: -1})
	want := goldenXML(t)

	owner := coord.ring.Owner("tiny\x00tinydb")
	var victim *testNode
	for _, n := range nodes {
		if n.id == owner {
			victim = n
		}
	}
	if victim == nil {
		t.Fatalf("owner %q not among nodes", owner)
	}
	epochBefore := coord.Epoch()
	victim.ts.Close() // hard kill: connection refused from here on

	status, hdr, body := postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK {
		t.Fatalf("failover status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("failover bytes differ from golden")
	}
	if hdr.Get("X-Ptcoord-Failover") != "true" {
		t.Fatalf("failover not flagged: %v", hdr)
	}
	if got := hdr.Get("X-Ptserve-Node"); got == owner || got == "" {
		t.Fatalf("request served by %q after killing owner %q", got, owner)
	}
	if coord.Epoch() <= epochBefore {
		t.Fatalf("epoch did not advance across a node death (%d → %d)", epochBefore, coord.Epoch())
	}
	m := coord.Metrics()
	if m.Failovers == 0 {
		t.Fatal("Failovers counter not incremented")
	}
	for _, ms := range m.Members {
		if ms.ID == owner && ms.Up {
			t.Fatal("dead owner still marked up after forward failure")
		}
	}
	// The coordinator itself stays ready: two nodes remain.
	resp, err := http.Get(cts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator readyz = %d with survivors up", resp.StatusCode)
	}
}

// TestClusterDrainingNodeFailsOver: a node answering 503/draining is
// treated exactly like a dead one — the request moves to a successor
// and still returns golden bytes, not the draining error.
func TestClusterDrainingNodeFailsOver(t *testing.T) {
	coord, cts, nodes := newTestCluster(t, 3, Config{ProbeInterval: -1})
	want := goldenXML(t)

	owner := coord.ring.Owner("tiny\x00tinydb")
	for _, n := range nodes {
		if n.id == owner {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := n.srv.Drain(ctx); err != nil {
				t.Fatalf("draining owner: %v", err)
			}
			cancel()
		}
	}
	status, hdr, body := postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d after owner drain: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("drain-failover bytes differ from golden")
	}
	if got := hdr.Get("X-Ptserve-Node"); got == owner {
		t.Fatal("draining owner still served the request")
	}
}

// TestClusterNoReady: with every node down the coordinator refuses
// with the schema's transient kind (retryable — the cluster may heal)
// and flips its own readiness.
func TestClusterNoReady(t *testing.T) {
	coord, cts, nodes := newTestCluster(t, 2, Config{ProbeInterval: -1})
	for _, n := range nodes {
		n.ts.Close()
	}
	// First request discovers both deaths and fails over to nothing.
	status, _, body := postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
	if kind := decodeClusterError(t, status, body); kind != serve.KindTransient {
		t.Fatalf("no-ready kind %q, want transient (%s)", kind, body)
	}
	if coord.Metrics().NoReady == 0 {
		t.Fatal("NoReady counter not incremented")
	}
	resp, err := http.Get(cts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with all nodes down = %d, want 503", resp.StatusCode)
	}
}

// TestClusterProbeRecovery: a node that goes unready and comes back is
// re-admitted by the prober within its interval — no manual re-join —
// and its recovery bumps the epoch and re-warms it.
func TestClusterProbeRecovery(t *testing.T) {
	// A standalone flaky node whose readiness the test controls.
	var ready atomic.Bool
	ready.Store(true)
	var warms atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			if ready.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
		case "/warm":
			warms.Add(1)
			w.WriteHeader(http.StatusOK)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer flaky.Close()

	coord := New(Config{ProbeInterval: 15 * time.Millisecond, ProbeSeed: 42})
	defer coord.Close()
	if err := coord.Join("flaky", flaky.URL); err != nil {
		t.Fatal(err)
	}
	// Seed a routed pair so recovery has something to warm with.
	coord.mu.Lock()
	coord.pairs["tiny\x00tinydb"] = [2]string{"tiny", "tinydb"}
	coord.mu.Unlock()

	isUp := func() bool {
		for _, m := range coord.Metrics().Members {
			if m.ID == "flaky" {
				return m.Up
			}
		}
		return false
	}
	waitFor(t, "initial up", isUp)
	epochUp := coord.Epoch()

	ready.Store(false)
	waitFor(t, "probe-driven mark-down", func() bool { return !isUp() })
	if coord.Epoch() <= epochUp {
		t.Fatal("mark-down did not bump the epoch")
	}

	ready.Store(true)
	waitFor(t, "probe-driven recovery", isUp)
	waitFor(t, "re-warm on recovery", func() bool { return warms.Load() > 0 })
}

// TestClusterJoinHTTP: nodes self-register over the wire; garbage is
// refused with the validation kind.
func TestClusterJoinHTTP(t *testing.T) {
	coord, cts, _ := newTestCluster(t, 1, Config{ProbeInterval: -1})
	extra := newTestNode(t, "joiner", nil, nil)
	payload := fmt.Sprintf(`{"id":"joiner","url":%q}`, extra.url())
	resp, err := http.Post(cts.URL+"/join", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Epoch   uint64   `json:"epoch"`
		Members []string `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Members) != 2 || out.Epoch == 0 {
		t.Fatalf("join response %+v, want 2 members and a bumped epoch", out)
	}
	found := false
	for _, m := range coord.Metrics().Members {
		if m.ID == "joiner" && m.Up {
			found = true
		}
	}
	if !found {
		t.Fatal("joiner not up after HTTP join")
	}

	resp, err = http.Post(cts.URL+"/join", "application/json", strings.NewReader(`{"id":""}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if kind := decodeClusterError(t, resp.StatusCode, buf.Bytes()); kind != serve.KindValidation {
		t.Fatalf("bad join kind %q, want validation", kind)
	}
}

// TestClusterDedup: concurrent byte-identical requests through the
// coordinator share one routed flight; the shared header and the
// Deduped counter agree, and every caller gets golden bytes.
func TestClusterDedup(t *testing.T) {
	coord, cts, nodes := newTestCluster(t, 2, Config{ProbeInterval: -1})
	want := goldenXML(t)

	const n = 8
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, hdr, body := postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, body)
				return
			}
			if !bytes.Equal(body, want) {
				t.Error("deduped bytes differ from golden")
			}
			if hdr.Get("X-Ptcoord-Shared") == "true" {
				sharedCount.Add(1)
			}
		}()
	}
	wg.Wait()
	m := coord.Metrics()
	if m.Deduped != sharedCount.Load() {
		t.Fatalf("Deduped metric %d != shared headers %d", m.Deduped, sharedCount.Load())
	}
	total := int64(0)
	for _, nd := range nodes {
		total += nd.hits.Load()
	}
	if total+m.Deduped != n {
		t.Fatalf("forwarded %d + deduped %d != %d requests", total, m.Deduped, n)
	}
}

// TestCoordinatorDrain: drain flips readiness, refuses publishes with
// the draining kind, stops the prober, and leaks nothing.
func TestCoordinatorDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	node := newTestNode(t, "solo", nil, nil)
	coord := New(Config{ProbeInterval: 10 * time.Millisecond})
	if err := coord.Join(node.id, node.url()); err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := coord.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := http.Get(cts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d", resp.StatusCode)
	}
	status, _, body := postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
	if kind := decodeClusterError(t, status, body); kind != serve.KindDraining {
		t.Fatalf("publish after drain: kind %q, want draining", kind)
	}
	cts.Close()
	node.ts.Close()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	testutil.SettledGoroutines(t, base)
}
