//go:build !race

package cluster

// raceEnabled reports whether the race detector is compiled in; the
// storm batches shrink under it (coverage there is per-shape, not
// per-seed, and the detector multiplies every request's cost).
const raceEnabled = false
