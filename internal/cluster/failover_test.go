package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"ptx/internal/supervise"
)

// TestFailoverSingleflightRace is the leader-election contract under
// concurrency (run under -race in CI): a herd of byte-identical
// requests dedups into ONE routed flight; when the owner node dies mid-
// request, exactly one retry — the new leader — lands on the surviving
// node, and every caller in the herd receives byte-identical golden
// output. The kill is deterministic (the victim hijacks and severs the
// connection on its first publish), the concurrency is not.
func TestFailoverSingleflightRace(t *testing.T) {
	// Choose ids so the victim OWNS the pair's key — the herd must hit
	// the dying node first, not by luck but by construction.
	scratch := ringOf("n1", "n2")
	prefs := scratch.Prefer("tiny\x00tinydb", 2)
	victimID, survivorID := prefs[0], prefs[1]

	store, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	survivor := newTestNode(t, survivorID, store, nil)

	var victimHits atomic.Int64
	victim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/publish":
			victimHits.Add(1)
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("test server does not support hijacking")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close() // die mid-request: the client sees a torn connection
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer victim.Close()

	coord := New(Config{ProbeInterval: -1})
	defer coord.Close()
	if err := coord.Join(victimID, victim.URL); err != nil {
		t.Fatal(err)
	}
	if err := coord.Join(survivorID, survivor.url()); err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	want := goldenXML(t)
	epochBefore := coord.Epoch()

	const herd = 8
	var wg sync.WaitGroup
	var shared atomic.Int64
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, hdr, body := postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, body)
				return
			}
			if !bytes.Equal(body, want) {
				t.Error("herd member got non-golden bytes")
			}
			if hdr.Get("X-Ptcoord-Shared") == "true" {
				shared.Add(1)
			}
		}()
	}
	wg.Wait()

	// Exactly one leader reached the victim, exactly one new leader was
	// elected onto the survivor, and everyone else shared the flight.
	if got := victimHits.Load(); got != 1 {
		t.Fatalf("victim saw %d publishes, want exactly 1 (the original leader)", got)
	}
	if got := survivor.hits.Load(); got != 1 {
		t.Fatalf("survivor saw %d publishes, want exactly 1 (the new leader)", got)
	}
	if got := shared.Load(); got != herd-1 {
		t.Fatalf("%d of %d herd members shared the flight, want %d", got, herd, herd-1)
	}
	if coord.Epoch() <= epochBefore {
		t.Fatal("owner death did not bump the epoch")
	}
	m := coord.Metrics()
	if m.Failovers != 1 || m.Deduped != herd-1 {
		t.Fatalf("metrics: failovers %d (want 1), deduped %d (want %d)", m.Failovers, m.Deduped, herd-1)
	}
}

// TestClusterCheckpointHandoff is the distributed resume acceptance
// test, fully deterministic: a node-budgeted run fails on its owner
// leaving a checkpoint; the owner is then KILLED; re-submitting the
// identical body routes to the ring successor at a bumped epoch, which
// resumes from the dead node's snapshot (X-Ptserve-Resumed: true) and
// — across enough bounded rounds — finishes with golden bytes.
func TestClusterCheckpointHandoff(t *testing.T) {
	coord, cts, nodes := newTestCluster(t, 3, Config{ProbeInterval: -1})
	want := goldenXML(t)

	const body = `{"spec":"tiny","db":"tinydb","limits":{"max_nodes":3}}`
	status, hdr, respBody := postCluster(t, cts, body)
	if kind := decodeClusterError(t, status, respBody); kind != "budget" {
		t.Fatalf("first round: kind %q, want budget (%s)", kind, respBody)
	}
	owner := hdr.Get("X-Ptserve-Node")
	if owner == "" {
		t.Fatal("first round did not name its node")
	}
	for _, n := range nodes {
		if n.id == owner {
			n.ts.Close() // kill the owner with its checkpoint on disk
		}
	}

	sawResume := false
	for round := 0; round < 50; round++ {
		status, hdr, respBody := postCluster(t, cts, body)
		if node := hdr.Get("X-Ptserve-Node"); node == owner {
			t.Fatalf("round %d: dead owner %q answered", round, owner)
		}
		if status == http.StatusOK {
			if !bytes.Equal(respBody, want) {
				t.Fatalf("round %d: completed bytes differ from golden", round)
			}
			if hdr.Get("X-Ptserve-Resumed") != "true" {
				t.Fatalf("round %d: completion did not resume from the checkpoint", round)
			}
			sawResume = true
			break
		}
		if kind := decodeClusterError(t, status, respBody); kind != "budget" {
			t.Fatalf("round %d: kind %q, want budget (%s)", round, kind, respBody)
		}
	}
	if !sawResume {
		t.Fatal("run never completed after the owner kill")
	}
	if coord.Metrics().Failovers == 0 {
		t.Fatal("no failover recorded despite the kill")
	}
}
