package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ptx/internal/parser"
	"ptx/internal/pt"
	"ptx/internal/serve"
	"ptx/internal/supervise"
)

// The same two-level publish the serve tests pin goldens against.
const tinySpec = `
schema R/1
transducer tiny root db start q0
tag item/1, text/1
rule q0 db -> (q1, item, [x;] R(x))
rule q1 item -> (q2, text, [x;] Reg(x))
rule q2 text -> .
`

const tinyDB = `
R(a)
R(b)
R(c)
`

// testNode is one worker in a test cluster: a real serve.Server behind
// a real listener, with a hit counter so tests can assert exactly which
// node did the work.
type testNode struct {
	id    string
	srv   *serve.Server
	ts    *httptest.Server
	hits  atomic.Int64 // publish requests that reached this node
	mhits atomic.Int64 // mutate requests that reached this node
}

func (n *testNode) url() string { return n.ts.URL }

// newTestNode builds a worker over a fresh tiny/tinydb registry. A nil
// store disables the checkpoint path (benchmarks use this so routed
// throughput is not charged for checkpoint I/O).
func newTestNode(t testing.TB, id string, store supervise.CheckpointStore, mutate func(*serve.Config)) *testNode {
	t.Helper()
	reg := serve.NewRegistry()
	if err := reg.RegisterSpec("tiny", tinySpec); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterDB("tinydb", tinyDB); err != nil {
		t.Fatal(err)
	}
	cfg := serve.Config{
		Registry:        reg,
		NodeID:          id,
		Store:           store,
		CheckpointEvery: 1,
		Workers:         8,
		Queue:           16,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := &testNode{id: id, srv: srv}
	inner := srv.Handler()
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/publish":
			n.hits.Add(1)
		case "/mutate":
			n.mhits.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		n.ts.Close()
		srv.Close()
	})
	return n
}

// newTestCluster stands up n workers over one shared store plus a
// coordinator with all of them joined and up.
func newTestCluster(t *testing.T, n int, ccfg Config) (*Coordinator, *httptest.Server, []*testNode) {
	t.Helper()
	dir, err := supervise.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		nodes[i] = newTestNode(t, fmt.Sprintf("node-%d", i+1), dir, nil)
	}
	coord := New(ccfg)
	t.Cleanup(coord.Close)
	for _, nd := range nodes {
		if err := coord.Join(nd.id, nd.url()); err != nil {
			t.Fatalf("join %s: %v", nd.id, err)
		}
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)
	return coord, cts, nodes
}

// postCluster publishes through the coordinator.
func postCluster(t *testing.T, cts *httptest.Server, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(cts.URL+"/publish", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST coordinator /publish: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// decodeClusterError asserts the stable JSON error schema end-to-end:
// body parses, kind is known, and the status matches serve's pinned
// kind↔status table even after proxying.
func decodeClusterError(t *testing.T, status int, body []byte) string {
	t.Helper()
	var eb struct {
		Error serve.ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not the JSON schema: %v\n%s", err, body)
	}
	want, ok := serve.StatusForKind(eb.Error.Kind)
	if !ok {
		t.Fatalf("unknown error kind %q", eb.Error.Kind)
	}
	if status != want {
		t.Fatalf("kind %q arrived with status %d, pinned mapping says %d", eb.Error.Kind, status, want)
	}
	return eb.Error.Kind
}

// goldenXML is the byte-exact expected output of tiny/tinydb.
func goldenXML(t *testing.T) []byte {
	t.Helper()
	tr, err := parser.ParseTransducer(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := parser.ParseInstance(tinyDB, tr.Schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Xi.WriteXMLVirtual(&buf, tr.Virtual); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitFor polls cond up to 2s — used only for probe-driven transitions
// whose timing the test does not control directly.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
