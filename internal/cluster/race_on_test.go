//go:build race

package cluster

// See race_off_test.go.
const raceEnabled = true
