// Hedged failover for idempotent reads. A publish (deduped by run key
// at every layer) and a watch CONNECT are safe to issue twice, so the
// coordinator fires one delayed second attempt at the next
// preference-list member when the primary dawdles: first success wins,
// the loser is canceled. Mutations never come through here — a
// duplicated mutation would race for sequence numbers on two nodes.
package cluster

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"ptx/internal/runctl"
	"ptx/internal/serve"
)

// attemptResult is one member's answer in a hedged forward race.
type attemptResult struct {
	m      MemberStatus
	status int
	header http.Header
	body   []byte
	err    error
	hedged bool
}

// hedgeAfter resolves the hedge delay for a request whose budget runs
// out at budgetDeadline: configured value, or a quarter of the
// remaining budget clamped to [20ms, 2s]. Negative config disables
// hedging (returns -1).
func (c *Coordinator) hedgeAfter(budgetDeadline time.Time) time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	if c.cfg.HedgeDelay < 0 {
		return -1
	}
	d := time.Until(budgetDeadline) / 4
	if d < 20*time.Millisecond {
		d = 20 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// forward routes one body along its preference list: the key's owner
// first, then ring successors. Members whose circuit breaker is open
// are skipped — a request's deadline budget is too precious to spend
// re-proving a known-bad peer. A transport failure (including an
// integrity-check failure on the response body) marks the node down,
// feeds its breaker, and moves on — the NEXT attempt carries the
// bumped epoch, which is exactly the authority the successor needs to
// overwrite the dead node's checkpoints. While the primary attempt is
// in flight, one hedged attempt may fire at the next member after the
// hedge delay; the first usable answer wins and every other attempt is
// canceled. Any real response, success or typed error, is returned
// verbatim: the single-node error schema survives the cluster tier
// untouched.
func (c *Coordinator) forward(ctx context.Context, budgetDeadline time.Time, body []byte, runKey string) (int, http.Header, []byte) {
	spec, db, _ := routingPair(body)
	prefs := c.preference(spec + "\x00" + db)
	if len(prefs) == 0 {
		c.noReady.Add(1)
		return buffered(ErrNoReady)
	}
	c.routed.Add(1)
	if c.cfg.Replicas > 0 && c.cfg.Replicas < len(prefs) {
		prefs = prefs[:c.cfg.Replicas]
	}

	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	results := make(chan attemptResult, len(prefs))
	next, inflight, fails := 0, 0, 0
	launch := func(hedged bool) bool {
		for next < len(prefs) {
			m := prefs[next]
			next++
			if !c.breakers.Allow(m.ID) {
				continue
			}
			inflight++
			if hedged {
				c.hedges.Add(1)
			}
			go func(m MemberStatus, hedged bool) {
				status, header, respBody, err := c.attempt(actx, m, body, runKey, budgetDeadline)
				results <- attemptResult{m: m, status: status, header: header, body: respBody, err: err, hedged: hedged}
			}(m, hedged)
			return true
		}
		return false
	}
	if !launch(false) {
		c.noReady.Add(1)
		return buffered(ErrNoReady)
	}
	var hedgeC <-chan time.Time
	if d := c.hedgeAfter(budgetDeadline); d >= 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	for inflight > 0 {
		select {
		case <-hedgeC:
			// One hedge per request: a storm of speculative retries is
			// its own outage.
			hedgeC = nil
			launch(true)
		case res := <-results:
			inflight--
			if res.err != nil {
				if ctx.Err() != nil {
					// The BUDGET died, not the node: this is not
					// evidence against the member, it is the request
					// outliving its deadline. Fail typed.
					return buffered(&runctl.ErrCanceled{Cause: context.DeadlineExceeded})
				}
				fails++
				c.breakers.Failure(res.m.ID)
				c.markDown(res.m.ID)
				c.failovers.Add(1)
				if inflight == 0 && !launch(false) {
					c.noReady.Add(1)
					return buffered(ErrNoReady)
				}
				continue
			}
			c.breakers.Success(res.m.ID)
			if res.status == http.StatusServiceUnavailable && errorKind(res.body) == serve.KindDraining {
				// The node is shutting down; its successors own its
				// keys now. The network is fine, so the breaker heard
				// a success — only membership changes.
				fails++
				c.markDown(res.m.ID)
				c.failovers.Add(1)
				if inflight == 0 && !launch(false) {
					c.noReady.Add(1)
					return buffered(ErrNoReady)
				}
				continue
			}
			if res.hedged {
				c.hedgeWins.Add(1)
				res.header.Set("X-Ptcoord-Hedged", "true")
			}
			if fails > 0 {
				res.header.Set("X-Ptcoord-Failover", "true")
			}
			res.header.Set("X-Ptcoord-Attempts", strconv.Itoa(fails+1))
			return res.status, res.header, res.body
		case <-ctx.Done():
			return buffered(&runctl.ErrCanceled{Cause: context.DeadlineExceeded})
		}
	}
	c.noReady.Add(1)
	return buffered(ErrNoReady)
}

// errWatchDraining marks a watch connect that reached a draining node:
// a routing fact, not a network failure, so it moves to the next member
// without feeding the breaker.
var errWatchDraining = errors.New("cluster: watch target draining")

// watchResult is one member's answer in a hedged watch-connect race.
// The winner's resp is a live stream; cancel must outlive the proxying.
type watchResult struct {
	m      MemberStatus
	idx    int
	resp   *http.Response
	cancel context.CancelFunc
	err    error
	hedged bool
}

// hedgedWatch races the CONNECT phase of a watch proxy across prefs:
// the stream itself cannot be hedged (it is long-lived and stateful),
// but the connect is idempotent until the first byte is relayed.
// connect must honor its context and return a response ready to
// stream. Returns the winning result, the attempt count for the
// X-Ptcoord-Attempts stamp, and ok=false when no member connected.
func (c *Coordinator) hedgedWatch(ctx context.Context, prefs []MemberStatus, connect func(context.Context, MemberStatus) (*http.Response, error)) (watchResult, int, bool) {
	results := make(chan watchResult, len(prefs))
	var cancels []context.CancelFunc // mutated only by the loop below
	next, inflight, fails := 0, 0, 0
	launch := func(hedged bool) bool {
		for next < len(prefs) {
			m := prefs[next]
			next++
			if !c.breakers.Allow(m.ID) {
				continue
			}
			inflight++
			if hedged {
				c.hedges.Add(1)
			}
			cctx, cancel := context.WithCancel(ctx)
			cancels = append(cancels, cancel)
			idx := len(cancels) - 1
			go func(m MemberStatus, hedged bool) {
				resp, err := connect(cctx, m)
				results <- watchResult{m: m, idx: idx, resp: resp, cancel: cancel, err: err, hedged: hedged}
			}(m, hedged)
			return true
		}
		return false
	}
	// abandon cancels every launched attempt except keep (-1 = none)
	// and drains their results async, closing any stream that raced in.
	abandon := func(keep, inflight int) {
		for i, cancel := range cancels {
			if i != keep {
				cancel()
			}
		}
		if inflight == 0 {
			return
		}
		go func() {
			for i := 0; i < inflight; i++ {
				if res := <-results; res.resp != nil {
					res.resp.Body.Close()
				}
			}
		}()
	}
	if !launch(false) {
		return watchResult{}, fails, false
	}
	var hedgeC <-chan time.Time
	if d := c.hedgeAfter(time.Now().Add(c.cfg.ForwardBudget)); d >= 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	for inflight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			launch(true)
		case res := <-results:
			inflight--
			if res.err != nil {
				res.cancel()
				if ctx.Err() != nil {
					// The watcher hung up (or the coordinator is
					// draining); stop quietly.
					abandon(-1, inflight)
					return watchResult{}, fails, false
				}
				fails++
				if !errors.Is(res.err, errWatchDraining) {
					c.breakers.Failure(res.m.ID)
				}
				c.markDown(res.m.ID)
				c.failovers.Add(1)
				if inflight == 0 && !launch(false) {
					return watchResult{}, fails, false
				}
				continue
			}
			c.breakers.Success(res.m.ID)
			if res.hedged {
				c.hedgeWins.Add(1)
			}
			abandon(res.idx, inflight)
			return res, fails, true
		case <-ctx.Done():
			abandon(-1, inflight)
			return watchResult{}, fails, false
		}
	}
	return watchResult{}, fails, false
}
