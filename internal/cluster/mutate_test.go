// Routed mutations and proxied watches: a delta POSTed at the
// coordinator lands on the database's ring owner, which replicates it
// to every up successor before acking — so a publish anywhere in the
// cluster serves post-delta bytes, watches long-poll and stream through
// the proxy, and owner loss no longer loses acknowledged deltas
// (TestClusterMutateOwnerLossServesPostDelta pins the durability
// contract that replaced the old node-local-logs limitation).
package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"ptx/internal/parser"
	"ptx/internal/pt"
	"ptx/internal/testutil"
)

const (
	insertD = `{"spec":"tiny","db":"tinydb","ops":[{"op":"insert","rel":"R","tuple":["d"]}]}`
	deleteD = `{"spec":"tiny","db":"tinydb","ops":[{"op":"delete","rel":"R","tuple":["d"]}]}`
)

// goldenXMLWith is goldenXML over tinyDB plus extra facts.
func goldenXMLWith(t *testing.T, extra string) []byte {
	t.Helper()
	tr, err := parser.ParseTransducer(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := parser.ParseInstance(tinyDB+extra, tr.Schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(inst, pt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Xi.WriteXMLVirtual(&buf, tr.Virtual); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postMutate sends a delta through the coordinator.
func postMutate(t *testing.T, cts *httptest.Server, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(cts.URL+"/mutate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST coordinator /mutate: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// getWatch long-polls through the coordinator.
func getWatch(t *testing.T, cts *httptest.Server, query string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(cts.URL + "/watch?" + query)
	if err != nil {
		t.Fatalf("GET coordinator /watch: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

type clusterWatchBody struct {
	Version uint64 `json:"version"`
	Resync  bool   `json:"resync"`
	Changes []struct {
		Version   uint64 `json:"version"`
		Effective int    `json:"effective_ops"`
	} `json:"changes"`
}

// TestClusterMutateRoutesToDBOwner: a routed mutation lands on the
// database's ring owner (the single sequence authority for that db),
// is replicated to every other node before the ack, and subsequent
// routed publishes serve post-delta bytes wherever they land.
func TestClusterMutateRoutesToDBOwner(t *testing.T) {
	coord, cts, nodes := newTestCluster(t, 3, Config{ProbeInterval: -1})
	owner := coord.ring.Owner("mutate\x00tinydb")

	status, hdr, body := postMutate(t, cts, insertD)
	if status != http.StatusOK {
		t.Fatalf("mutate status %d: %s", status, body)
	}
	if got := hdr.Get("X-Ptserve-Node"); got != owner {
		t.Fatalf("mutation applied by %q but db ring owner is %q", got, owner)
	}
	if got := hdr.Get("X-Ptcoord-Attempts"); got != "1" {
		t.Fatalf("X-Ptcoord-Attempts = %q, want 1", got)
	}
	var mr struct {
		Seq        uint64 `json:"seq"`
		Replicated int    `json:"replicated"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("mutate body: %v\n%s", err, body)
	}
	if mr.Seq != 1 || mr.Replicated != 2 {
		t.Fatalf("mutate reported seq=%d replicated=%d, want seq=1 replicated=2 (both successors confirmed)", mr.Seq, mr.Replicated)
	}
	for _, n := range nodes {
		want := int64(0)
		if n.id == owner {
			want = 1
		}
		if got := n.mhits.Load(); got != want {
			t.Fatalf("node %s saw %d /mutate requests, want %d (replication uses /replicate, not /mutate)", n.id, got, want)
		}
	}

	// Replication means ANY node serves post-delta bytes — including
	// the (spec, db) publish owner, whoever that is.
	status, _, body = postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK {
		t.Fatalf("publish status %d: %s", status, body)
	}
	if want := goldenXMLWith(t, "R(d)\n"); !bytes.Equal(body, want) {
		t.Fatalf("post-delta publish:\n got %q\nwant %q", body, want)
	}

	// Toggle back; the pair returns to its pre-delta golden.
	if status, _, body = postMutate(t, cts, deleteD); status != http.StatusOK {
		t.Fatalf("delete status %d: %s", status, body)
	}
	if status, _, body = postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`); status != http.StatusOK {
		t.Fatalf("publish status %d: %s", status, body)
	}
	if want := goldenXML(t); !bytes.Equal(body, want) {
		t.Fatalf("post-toggle publish differs from base golden:\n got %q\nwant %q", body, want)
	}
	if m := coord.Metrics(); m.Mutations != 2 {
		t.Fatalf("Metrics.Mutations = %d, want 2", m.Mutations)
	}
}

// TestClusterWatchLongPollProxied: a long-poll parked at the
// coordinator is woken by a routed mutation — watch and mutate share
// the pair's owner, so the notification actually fires.
func TestClusterWatchLongPollProxied(t *testing.T) {
	coord, cts, _ := newTestCluster(t, 2, Config{ProbeInterval: -1})
	owner := coord.ring.Owner("tiny\x00tinydb")

	// Prime the live view (version 1, no changes yet).
	status, hdr, body := getWatch(t, cts, "spec=tiny&db=tinydb")
	if status != http.StatusOK {
		t.Fatalf("prime watch status %d: %s", status, body)
	}
	if got := hdr.Get("X-Ptserve-Node"); got != owner {
		t.Fatalf("watch served by %q, want owner %q", got, owner)
	}
	var prime clusterWatchBody
	if err := json.Unmarshal(body, &prime); err != nil {
		t.Fatalf("prime watch body: %v\n%s", err, body)
	}
	if prime.Version != 1 || len(prime.Changes) != 0 {
		t.Fatalf("prime watch: version %d changes %d, want 1 and 0", prime.Version, len(prime.Changes))
	}

	type pollResult struct {
		status int
		body   []byte
	}
	done := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(cts.URL + "/watch?spec=tiny&db=tinydb&after=1&wait_ms=5000")
		if err != nil {
			done <- pollResult{status: -1, body: []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- pollResult{status: resp.StatusCode, body: b}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park upstream

	if status, _, body := postMutate(t, cts, insertD); status != http.StatusOK {
		t.Fatalf("mutate status %d: %s", status, body)
	}

	select {
	case res := <-done:
		if res.status != http.StatusOK {
			t.Fatalf("parked poll status %d: %s", res.status, res.body)
		}
		var wr clusterWatchBody
		if err := json.Unmarshal(res.body, &wr); err != nil {
			t.Fatalf("parked poll body: %v\n%s", err, res.body)
		}
		if len(wr.Changes) != 1 || wr.Changes[0].Version != 2 || wr.Changes[0].Effective != 1 {
			t.Fatalf("parked poll changes %+v, want exactly version 2 with 1 effective op", wr.Changes)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("parked long-poll was not woken by the routed mutation")
	}
}

// TestClusterWatchSSEProxiedStreams: a proxied SSE stream delivers the
// change event WHILE the stream is open — proof the coordinator
// flushes through instead of buffering to end-of-stream.
func TestClusterWatchSSEProxiedStreams(t *testing.T) {
	_, cts, _ := newTestCluster(t, 2, Config{ProbeInterval: -1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cts.URL+"/watch?spec=tiny&db=tinydb", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET SSE: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("SSE status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("Content-Type %q survived the proxy wrong", ct)
	}

	events := make(chan string, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var event string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				events <- fmt.Sprintf("%s %s", event, strings.TrimPrefix(line, "data: "))
			}
		}
	}()

	if status, _, body := postMutate(t, cts, insertD); status != http.StatusOK {
		t.Fatalf("mutate status %d: %s", status, body)
	}
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatal("SSE stream closed before any event")
		}
		if !strings.HasPrefix(ev, "change ") || !strings.Contains(ev, `"version":2`) {
			t.Fatalf("first SSE event %q, want a change at version 2", ev)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("no SSE event arrived while the stream was open (proxy buffering?)")
	}
	cancel() // unwind the proxied stream before the servers tear down
}

// TestClusterMutateOwnerLossServesPostDelta is the durability contract
// across failover: the owner replicated the acknowledged insert to its
// successor BEFORE the ack, so when the owner dies the successor serves
// post-delta bytes, and the retried delete finds the insert there to
// remove. No acknowledged delta is ever lost.
func TestClusterMutateOwnerLossServesPostDelta(t *testing.T) {
	coord, cts, nodes := newTestCluster(t, 2, Config{ProbeInterval: -1})

	status, hdr, body := postMutate(t, cts, insertD)
	if status != http.StatusOK {
		t.Fatalf("mutate status %d: %s", status, body)
	}
	owner := hdr.Get("X-Ptserve-Node")
	if status, _, body = postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`); status != http.StatusOK {
		t.Fatalf("publish status %d: %s", status, body)
	}
	if want := goldenXMLWith(t, "R(d)\n"); !bytes.Equal(body, want) {
		t.Fatal("pre-crash publish is not post-delta golden")
	}

	// Kill the owner. The coordinator has no probe loop, so it learns
	// of the death only from the next request's transport failure.
	for _, n := range nodes {
		if n.id == owner {
			n.ts.Close()
		}
	}
	epochBefore := coord.Epoch()

	status, _, body = postMutate(t, cts, deleteD)
	kind := decodeClusterError(t, status, body)
	if kind != "transient" {
		t.Fatalf("mutate against dead owner: kind %q, want transient (retryable, never silent replay)", kind)
	}
	if coord.Epoch() <= epochBefore {
		t.Fatal("owner death did not bump the epoch")
	}

	// The surviving successor holds the replicated insert: it serves
	// POST-delta bytes before the retry even lands.
	status, _, body = postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK {
		t.Fatalf("failover publish status %d: %s", status, body)
	}
	if want := goldenXMLWith(t, "R(d)\n"); !bytes.Equal(body, want) {
		t.Fatalf("failed-over publish lost the acknowledged insert:\n got %q\nwant %q", body, want)
	}

	// The retried delete routes to the successor, applies against the
	// replicated log, and returns the database to its base state.
	status, hdr, body = postMutate(t, cts, deleteD)
	if status != http.StatusOK {
		t.Fatalf("retry mutate status %d: %s", status, body)
	}
	if got := hdr.Get("X-Ptserve-Node"); got == "" || got == owner {
		t.Fatalf("retry served by %q, want the surviving successor", got)
	}
	status, _, body = postCluster(t, cts, `{"spec":"tiny","db":"tinydb"}`)
	if status != http.StatusOK {
		t.Fatalf("post-retry publish status %d: %s", status, body)
	}
	if want := goldenXML(t); !bytes.Equal(body, want) {
		t.Fatalf("post-retry publish differs from base golden:\n got %q\nwant %q", body, want)
	}
}

// TestClusterWatchSSEProxyNoLeak: a proxied SSE watcher that hangs up
// mid-stream must unwind BOTH halves of the proxy — the coordinator's
// copy loop and the worker's parked stream — leaving no goroutine
// behind.
func TestClusterWatchSSEProxyNoLeak(t *testing.T) {
	_, cts, nodes := newTestCluster(t, 2, Config{ProbeInterval: -1})
	base := runtime.NumGoroutine()

	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cts.URL+"/watch?spec=tiny&db=tinydb", nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		req.Header.Set("Accept", "text/event-stream")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatalf("GET SSE: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			cancel()
			t.Fatalf("SSE status %d: %s", resp.StatusCode, b)
		}
		// Read the response headers' worth of stream, then vanish the
		// client mid-stream.
		buf := make([]byte, 1)
		go func() { _, _ = resp.Body.Read(buf) }()
		time.Sleep(20 * time.Millisecond)
		cancel()
		resp.Body.Close()
	}
	// The keep-alive pools hold connection goroutines; drop them so the
	// settle measures only proxy machinery.
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	for _, n := range nodes {
		n.ts.Client().Transport.(*http.Transport).CloseIdleConnections()
	}
	testutil.SettledGoroutines(t, base)
}
