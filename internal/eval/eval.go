// Package eval implements active-domain evaluation of CQ, FO and IFP
// formulas over a relational instance extended with register relations.
//
// A formula evaluates to a set of satisfying assignments for its free
// variables, represented as a relation whose columns are the variables
// in a fixed order (Bindings). Conjunction is a natural join,
// disjunction an aligned union, negation a complement against the
// active domain, ∃ a projection, ∀ is ¬∃¬, and the inflationary
// fixpoint iterates its body until the stage relation stops growing —
// exactly the µ⁺ semantics of the paper (Section 2).
//
// The active domain of an evaluation is adom(I) ∪ adom(registers) ∪
// constants(φ), the standard finite relativization.
package eval

import (
	"fmt"
	"sort"
	"sync"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/value"
)

// Env is an evaluation environment: a database instance, extra named
// relations (node registers and fixpoint stages), and the value domain
// the quantifiers range over.
type Env struct {
	inst  *relation.Instance
	extra map[string]*relation.Relation
	// ctl carries the run-control checkpoints (cancellation, fixpoint
	// iteration budget) down into the evaluator; nil means unlimited.
	ctl *runctl.Controller
	// instAdom caches the instance's active domain; the instance is
	// immutable for the lifetime of an Env chain (registers live in
	// extra), and concurrent transducer workers share the cache.
	instAdom *adomCache
	// dom caches the merged inst∪extras active domain for this Env,
	// revalidated against the relation-level adom caches on each call
	// (see Domain).
	dom *domCache
	// noPlan disables the compiled-plan fast path of EvalQuery; see
	// WithoutPlanner.
	noPlan bool
}

type adomCache struct {
	once sync.Once
	vals []value.V
}

// domCache memoizes an Env's merged active domain. parts holds the
// per-source adom slices the cached base was computed from; because
// relation.Relation itself caches ActiveDomain and reallocates the
// slice on mutation, slice identity doubles as a validity token — any
// mutation of the instance or an extra relation yields fresh part
// slices and forces a re-merge.
type domCache struct {
	mu    sync.Mutex
	ok    bool
	parts [][]value.V
	base  []value.V
}

// NewEnv builds an environment over inst. Register relations (or any
// other auxiliary relations, e.g. the "Reg" relation of the current
// node) are added with WithRelation.
func NewEnv(inst *relation.Instance) *Env {
	return &Env{inst: inst, extra: make(map[string]*relation.Relation), instAdom: &adomCache{}, dom: &domCache{}}
}

// WithRelation returns a copy of the environment in which name resolves
// to rel, shadowing any instance relation of the same name. The derived
// environment gets its own domain cache (the extras changed) but keeps
// the shared instance-adom cache.
func (e *Env) WithRelation(name string, rel *relation.Relation) *Env {
	ne := &Env{inst: e.inst, extra: make(map[string]*relation.Relation, len(e.extra)+1),
		ctl: e.ctl, instAdom: e.instAdom, dom: &domCache{}, noPlan: e.noPlan}
	for k, v := range e.extra {
		ne.extra[k] = v
	}
	ne.extra[name] = rel
	return ne
}

// WithControl returns a copy of the environment whose evaluations check
// the given run controller (cancellation ticks in quantifier expansion
// and the fixpoint-iteration budget).
func (e *Env) WithControl(ctl *runctl.Controller) *Env {
	ne := &Env{inst: e.inst, extra: e.extra, ctl: ctl, instAdom: e.instAdom, dom: e.dom, noPlan: e.noPlan}
	return ne
}

// WithoutPlanner returns a copy of the environment in which EvalQuery
// skips the compiled-plan fast path and runs the optimized interpreter
// instead — the escape hatch behind pt.Options.NoPlan and the CLIs'
// -plan=off flag.
func (e *Env) WithoutPlanner() *Env {
	ne := &Env{inst: e.inst, extra: e.extra, ctl: e.ctl, instAdom: e.instAdom, dom: e.dom, noPlan: true}
	return ne
}

// Control returns the environment's run controller (possibly nil).
func (e *Env) Control() *runctl.Controller { return e.ctl }

// Lookup resolves a relation name: extra relations shadow the instance.
func (e *Env) Lookup(name string) (*relation.Relation, bool) {
	if r, ok := e.extra[name]; ok {
		return r, true
	}
	if e.inst != nil && e.inst.Has(name) {
		return e.inst.Rel(name), true
	}
	return nil, false
}

// Domain returns the active domain of the environment extended with the
// given constants, sorted. The inst∪extras merge is cached per Env and
// revalidated against the relation-level adom caches, so repeated
// evaluations against an unchanged environment share one slice; callers
// must treat the result as read-only.
func (e *Env) Domain(extraConsts []value.V) []value.V {
	base := e.domainBase()
	if len(extraConsts) == 0 {
		return base
	}
	seen := make(map[value.V]bool, len(base)+len(extraConsts))
	for _, v := range base {
		seen[v] = true
	}
	grew := false
	for _, v := range extraConsts {
		if !seen[v] {
			seen[v] = true
			grew = true
		}
	}
	if !grew {
		return base
	}
	out := make([]value.V, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	value.SortValues(out)
	return out
}

// domainBase returns the merged active domain of the instance and the
// extra relations, cached on the Env. Validity tracking is by slice
// identity: each source's ActiveDomain slice is cached on the relation
// and reallocated when the relation mutates, so comparing the part
// slices detects any mutation since the last merge.
func (e *Env) domainBase() []value.V {
	parts := make([][]value.V, 0, len(e.extra)+1)
	if e.inst != nil {
		if e.instAdom != nil {
			e.instAdom.once.Do(func() { e.instAdom.vals = e.inst.ActiveDomain() })
			parts = append(parts, e.instAdom.vals)
		} else {
			parts = append(parts, e.inst.ActiveDomain())
		}
	}
	if len(e.extra) > 0 {
		names := make([]string, 0, len(e.extra))
		for n := range e.extra {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			parts = append(parts, e.extra[n].ActiveDomain())
		}
	}
	if e.dom == nil {
		return mergeDomainParts(parts)
	}
	e.dom.mu.Lock()
	defer e.dom.mu.Unlock()
	if e.dom.ok && sameDomainParts(e.dom.parts, parts) {
		return e.dom.base
	}
	base := mergeDomainParts(parts)
	e.dom.ok = true
	e.dom.parts = parts
	e.dom.base = base
	return base
}

func sameDomainParts(a, b [][]value.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		if len(a[i]) > 0 && &a[i][0] != &b[i][0] {
			return false
		}
	}
	return true
}

func mergeDomainParts(parts [][]value.V) []value.V {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	seen := make(map[value.V]bool, n)
	out := make([]value.V, 0, n)
	for _, p := range parts {
		for _, v := range p {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	value.SortValues(out)
	return out
}

// Bindings is a set of assignments: a relation whose columns are the
// listed variables, in order.
type Bindings struct {
	Vars []logic.Var
	Rel  *relation.Relation
}

func newBindings(vars []logic.Var) *Bindings {
	return &Bindings{Vars: vars, Rel: relation.New(len(vars))}
}

// unitBindings is the single empty assignment over no variables
// (the truth value "true" for sentences).
func unitBindings() *Bindings {
	b := newBindings(nil)
	b.Rel.Add(value.Tuple{})
	return b
}

func (b *Bindings) varIndex() map[logic.Var]int {
	idx := make(map[logic.Var]int, len(b.Vars))
	for i, v := range b.Vars {
		idx[v] = i
	}
	return idx
}

// Eval evaluates formula f in environment env and returns its satisfying
// assignments over FreeVars(f). The formula is first rewritten to
// negation normal form so that negations evaluate as anti-join filters
// instead of active-domain complements wherever possible.
func Eval(f logic.Formula, env *Env) (*Bindings, error) {
	ev := &evaluator{env: env, ctl: env.ctl, adom: env.Domain(logic.Constants(f))}
	return ev.eval(pushNeg(f))
}

// EvalNaive evaluates without the negation-pushdown and filter-join
// optimizations — the ablation baseline (see BenchmarkAblationEval).
func EvalNaive(f logic.Formula, env *Env) (*Bindings, error) {
	ev := &evaluator{env: env, ctl: env.ctl, adom: env.Domain(logic.Constants(f)), naive: true}
	return ev.eval(f)
}

// EvalSentence evaluates a formula with no free variables to a boolean.
func EvalSentence(f logic.Formula, env *Env) (bool, error) {
	if fv := logic.FreeVars(f); len(fv) != 0 {
		return false, fmt.Errorf("eval: sentence has free variables %v", fv)
	}
	b, err := Eval(f, env)
	if err != nil {
		return false, err
	}
	return !b.Rel.Empty(), nil
}

// EvalQuery evaluates a transducer query φ(x̄;ȳ) to a relation over the
// head x̄·ȳ. Head variables that do not occur free in the formula range
// over the active domain (standard relativized semantics).
func EvalQuery(q *logic.Query, env *Env) (*relation.Relation, error) {
	return evalQueryWith(q, env, false)
}

// EvalQueryNaive is EvalQuery on the unoptimized evaluator (no negation
// pushdown, no filter joins) — the differential baseline used by the
// fuzz and cache-equivalence suites.
func EvalQueryNaive(q *logic.Query, env *Env) (*relation.Relation, error) {
	return evalQueryWith(q, env, true)
}

func evalQueryWith(q *logic.Query, env *Env, naive bool) (*relation.Relation, error) {
	// One OpEval fault checkpoint per actual evaluation: memo hits skip
	// it, so seeded chaos plans can distinguish cached from fresh work.
	if err := env.ctl.Fault(runctl.OpEval); err != nil {
		return nil, err
	}
	// Compiled-plan fast path: the query's operator tree, join layouts
	// and filter placements are resolved once (planCache) and reused for
	// every evaluation. The naive evaluator stays the differential
	// oracle; WithoutPlanner forces the optimized interpreter.
	if !naive && !env.noPlan {
		if p := planFor(q); p != nil {
			return p.Eval(env)
		}
	}
	ev := &evaluator{env: env, ctl: env.ctl, adom: env.Domain(logic.Constants(q.F)), naive: naive}
	f := q.F
	if !naive {
		f = pushNeg(f)
	}
	b, err := ev.eval(f)
	if err != nil {
		return nil, err
	}
	b, err = ev.expandTo(b, q.Head())
	if err != nil {
		return nil, err
	}
	// Reorder columns to head order.
	idx := b.varIndex()
	head := q.Head()
	cols := make([]int, len(head))
	for i, v := range head {
		cols[i] = idx[v]
	}
	return b.Rel.Project(cols...), nil
}

type evaluator struct {
	env   *Env
	ctl   *runctl.Controller
	adom  []value.V
	naive bool
}

func (ev *evaluator) eval(f logic.Formula) (*Bindings, error) {
	if err := ev.ctl.Tick(); err != nil {
		return nil, err
	}
	switch g := f.(type) {
	case *logic.Truth:
		if g.B {
			return unitBindings(), nil
		}
		return newBindings(nil), nil
	case *logic.Atom:
		return ev.evalAtom(g)
	case *logic.Eq:
		return ev.evalEq(g.L, g.R, true)
	case *logic.Neq:
		return ev.evalEq(g.L, g.R, false)
	case *logic.And:
		if ev.naive {
			l, err := ev.eval(g.L)
			if err != nil {
				return nil, err
			}
			r, err := ev.eval(g.R)
			if err != nil {
				return nil, err
			}
			return ev.join(l, r), nil
		}
		var conjuncts []logic.Formula
		flattenConj(g, &conjuncts)
		return ev.evalConj(conjuncts)
	case *logic.Or:
		l, err := ev.eval(g.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(g.R)
		if err != nil {
			return nil, err
		}
		return ev.union(l, r)
	case *logic.Not:
		inner, err := ev.eval(g.F)
		if err != nil {
			return nil, err
		}
		return ev.complement(inner)
	case *logic.Exists:
		inner, err := ev.eval(g.F)
		if err != nil {
			return nil, err
		}
		ex := ev.projectOut(inner, g.Bound)
		// Bound variables φ does not mention still range over the active
		// domain: over an empty domain ∃x ψ is false even when ψ holds,
		// which a bare column drop gets wrong. (With a nonempty domain,
		// expanding the missing bound vars and dropping them again is the
		// identity, so the column drop stands.)
		if len(ev.adom) == 0 && len(missingVars(g.Bound, inner.Vars)) > 0 {
			return newBindings(ex.Vars), nil
		}
		return ex, nil
	case *logic.Forall:
		if ev.naive {
			// ∀x̄ φ ≡ ¬∃x̄ ¬φ over the active domain, computed by direct
			// complementation.
			inner, err := ev.eval(g.F)
			if err != nil {
				return nil, err
			}
			want := append(append([]logic.Var{}, logic.FreeVars(g.F)...), missingVars(g.Bound, logic.FreeVars(g.F))...)
			inner, err = ev.expandTo(inner, want)
			if err != nil {
				return nil, err
			}
			neg, err := ev.complement(inner)
			if err != nil {
				return nil, err
			}
			exNeg := ev.projectOut(neg, g.Bound)
			return ev.complement(exNeg)
		}
		// Optimized: ∀x̄ φ ≡ ¬∃x̄ ¬φ with the inner negation pushed to
		// NNF, so only the final (low-arity) complement touches the
		// active domain. Bound variables ¬φ does not mention must still
		// range over the domain before being projected away — with an
		// empty active domain, ∀x ψ is vacuously true even when ψ is
		// false, which a bare column-drop ∃ gets wrong.
		inner, err := ev.eval(negate(g.F))
		if err != nil {
			return nil, err
		}
		inner, err = ev.expandTo(inner, g.Bound)
		if err != nil {
			return nil, err
		}
		exNeg := ev.projectOut(inner, g.Bound)
		free := logic.FreeVars(g)
		exNeg, err = ev.expandTo(exNeg, free)
		if err != nil {
			return nil, err
		}
		exNeg = ev.projectTo(exNeg, free)
		return ev.complement(exNeg)
	case *logic.Fixpoint:
		return ev.evalFixpoint(g)
	}
	return nil, fmt.Errorf("eval: unknown formula %T", f)
}

func missingVars(vs []logic.Var, have []logic.Var) []logic.Var {
	set := make(map[logic.Var]bool, len(have))
	for _, v := range have {
		set[v] = true
	}
	var out []logic.Var
	for _, v := range vs {
		if !set[v] {
			out = append(out, v)
		}
	}
	return out
}

func (ev *evaluator) evalAtom(a *logic.Atom) (*Bindings, error) {
	rel, ok := ev.env.Lookup(a.Rel)
	if !ok {
		return nil, fmt.Errorf("eval: unknown relation %q in atom %s", a.Rel, a)
	}
	if rel.Arity() != len(a.Args) {
		return nil, fmt.Errorf("eval: atom %s has %d args but relation %q has arity %d",
			a, len(a.Args), a.Rel, rel.Arity())
	}
	// Distinct variables of the atom, in first-occurrence order.
	var vars []logic.Var
	varPos := make(map[logic.Var][]int)
	for i, t := range a.Args {
		if v, okv := t.(logic.Var); okv {
			if _, seen := varPos[v]; !seen {
				vars = append(vars, v)
			}
			varPos[v] = append(varPos[v], i)
		}
	}
	out := newBindings(vars)
	rel.Each(func(t value.Tuple) bool {
		// Check constants.
		for i, arg := range a.Args {
			if c, okc := arg.(logic.Const); okc && t[i] != value.V(c) {
				return true
			}
		}
		// Check repeated variables agree; extract assignment.
		asg := make(value.Tuple, len(vars))
		for vi, v := range vars {
			positions := varPos[v]
			first := t[positions[0]]
			for _, p := range positions[1:] {
				if t[p] != first {
					return true
				}
			}
			asg[vi] = first
		}
		out.Rel.Add(asg)
		return true
	})
	return out, nil
}

func (ev *evaluator) evalEq(l, r logic.Term, wantEq bool) (*Bindings, error) {
	lv, lIsVar := l.(logic.Var)
	rv, rIsVar := r.(logic.Var)
	switch {
	case !lIsVar && !rIsVar:
		lc := value.V(l.(logic.Const))
		rc := value.V(r.(logic.Const))
		if (lc == rc) == wantEq {
			return unitBindings(), nil
		}
		return newBindings(nil), nil
	case lIsVar && rIsVar:
		if lv == rv {
			// x=x is true for all adom values; x≠x is false.
			out := newBindings([]logic.Var{lv})
			if wantEq {
				for _, d := range ev.adom {
					out.Rel.Add(value.Tuple{d})
				}
			}
			return out, nil
		}
		out := newBindings([]logic.Var{lv, rv})
		for _, d1 := range ev.adom {
			if wantEq {
				out.Rel.Add(value.Tuple{d1, d1})
				continue
			}
			for _, d2 := range ev.adom {
				if d1 != d2 {
					out.Rel.Add(value.Tuple{d1, d2})
				}
			}
		}
		return out, nil
	default:
		// One variable, one constant.
		v := lv
		var c value.V
		if lIsVar {
			c = value.V(r.(logic.Const))
		} else {
			v = rv
			c = value.V(l.(logic.Const))
		}
		out := newBindings([]logic.Var{v})
		if wantEq {
			out.Rel.Add(value.Tuple{c})
			return out, nil
		}
		for _, d := range ev.adom {
			if d != c {
				out.Rel.Add(value.Tuple{d})
			}
		}
		return out, nil
	}
}

// join computes the natural join of two binding sets.
func (ev *evaluator) join(l, r *Bindings) *Bindings {
	lIdx := l.varIndex()
	rIdx := r.varIndex()
	var shared []logic.Var
	var rOnly []logic.Var
	for _, v := range r.Vars {
		if _, ok := lIdx[v]; ok {
			shared = append(shared, v)
		} else {
			rOnly = append(rOnly, v)
		}
	}
	outVars := append(append([]logic.Var{}, l.Vars...), rOnly...)
	out := newBindings(outVars)

	// Hash the smaller side on the shared key.
	key := func(t value.Tuple, idx map[logic.Var]int) string {
		k := make(value.Tuple, len(shared))
		for i, v := range shared {
			k[i] = t[idx[v]]
		}
		return k.Key()
	}
	rHash := make(map[string][]value.Tuple)
	r.Rel.EachUnordered(func(t value.Tuple) bool {
		k := key(t, rIdx)
		rHash[k] = append(rHash[k], t)
		return true
	})
	l.Rel.EachUnordered(func(lt value.Tuple) bool {
		for _, rt := range rHash[key(lt, lIdx)] {
			t := make(value.Tuple, 0, len(outVars))
			t = append(t, lt...)
			for _, v := range rOnly {
				t = append(t, rt[rIdx[v]])
			}
			out.Rel.Add(t)
		}
		return true
	})
	return out
}

// union computes l ∪ r after expanding both sides to the union of their
// variables over the active domain.
func (ev *evaluator) union(l, r *Bindings) (*Bindings, error) {
	outVars := append([]logic.Var{}, l.Vars...)
	set := make(map[logic.Var]bool, len(outVars))
	for _, v := range outVars {
		set[v] = true
	}
	for _, v := range r.Vars {
		if !set[v] {
			outVars = append(outVars, v)
			set[v] = true
		}
	}
	le, err := ev.expandTo(l, outVars)
	if err != nil {
		return nil, err
	}
	re, err := ev.expandTo(r, outVars)
	if err != nil {
		return nil, err
	}
	// Align re's columns to le's order.
	reIdx := re.varIndex()
	cols := make([]int, len(outVars))
	for i, v := range le.Vars {
		cols[i] = reIdx[v]
	}
	aligned := re.Rel.Project(cols...)
	out := &Bindings{Vars: le.Vars, Rel: relation.Union(le.Rel, aligned)}
	return out, nil
}

// complement returns adom^k minus the bindings, over the same variables.
// The adom^k sweep is one of the two places evaluation cost explodes
// with the active domain, so it polls the run controller as it goes.
func (ev *evaluator) complement(b *Bindings) (*Bindings, error) {
	out := newBindings(b.Vars)
	t := make(value.Tuple, len(b.Vars))
	var stop error
	var rec func(i int)
	rec = func(i int) {
		if stop != nil {
			return
		}
		if i == len(b.Vars) {
			if stop = ev.ctl.Tick(); stop != nil {
				return
			}
			if !b.Rel.Contains(t) {
				out.Rel.Add(t)
			}
			return
		}
		for _, d := range ev.adom {
			t[i] = d
			rec(i + 1)
			if stop != nil {
				return
			}
		}
	}
	rec(0)
	if stop != nil {
		return nil, stop
	}
	return out, nil
}

// projectOut removes the given variables from the bindings.
func (ev *evaluator) projectOut(b *Bindings, drop []logic.Var) *Bindings {
	dropSet := make(map[logic.Var]bool, len(drop))
	for _, v := range drop {
		dropSet[v] = true
	}
	var keepVars []logic.Var
	var keepCols []int
	for i, v := range b.Vars {
		if !dropSet[v] {
			keepVars = append(keepVars, v)
			keepCols = append(keepCols, i)
		}
	}
	return &Bindings{Vars: keepVars, Rel: b.Rel.Project(keepCols...)}
}

// expandTo extends the bindings to cover vars, letting new variables
// range over the active domain. Like complement, the expansion is
// adom^|missing| per tuple, so it polls the run controller.
func (ev *evaluator) expandTo(b *Bindings, vars []logic.Var) (*Bindings, error) {
	have := make(map[logic.Var]bool, len(b.Vars))
	for _, v := range b.Vars {
		have[v] = true
	}
	var missing []logic.Var
	seen := make(map[logic.Var]bool)
	for _, v := range vars {
		if !have[v] && !seen[v] {
			missing = append(missing, v)
			seen[v] = true
		}
	}
	if len(missing) == 0 {
		return b, nil
	}
	outVars := append(append([]logic.Var{}, b.Vars...), missing...)
	out := newBindings(outVars)
	ext := make(value.Tuple, len(missing))
	var stop error
	var rec func(base value.Tuple, i int)
	rec = func(base value.Tuple, i int) {
		if stop != nil {
			return
		}
		if i == len(missing) {
			if stop = ev.ctl.Tick(); stop != nil {
				return
			}
			out.Rel.Add(value.Concat(base, ext))
			return
		}
		for _, d := range ev.adom {
			ext[i] = d
			rec(base, i+1)
			if stop != nil {
				return
			}
		}
	}
	b.Rel.EachUnordered(func(t value.Tuple) bool {
		rec(t, 0)
		return stop == nil
	})
	if stop != nil {
		return nil, stop
	}
	return out, nil
}

// evalFixpoint computes the inflationary fixpoint of the body and then
// treats the result as an atom applied to the fixpoint's argument terms.
func (ev *evaluator) evalFixpoint(fp *logic.Fixpoint) (*Bindings, error) {
	k := len(fp.Vars)
	if len(fp.Args) != k {
		return nil, fmt.Errorf("eval: fixpoint %s applied to %d terms, expects %d", fp.Rel, len(fp.Args), k)
	}
	stage := relation.New(k)
	for iter := 1; ; iter++ {
		// The loop is guaranteed to terminate over the finite active
		// domain, but the number of iterations is only bounded by
		// |adom|^k — enforce the budget and the deadline here.
		if err := ev.ctl.FixpointIter(iter); err != nil {
			return nil, err
		}
		stageEnv := ev.env.WithRelation(fp.Rel, stage)
		inner := &evaluator{env: stageEnv, ctl: ev.ctl, adom: ev.adom}
		b, err := inner.eval(fp.Body)
		if err != nil {
			return nil, err
		}
		b, err = inner.expandTo(b, fp.Vars)
		if err != nil {
			return nil, err
		}
		idx := b.varIndex()
		cols := make([]int, k)
		for i, v := range fp.Vars {
			ci, ok := idx[v]
			if !ok {
				return nil, fmt.Errorf("eval: fixpoint variable %s lost during evaluation", v)
			}
			cols[i] = ci
		}
		next := b.Rel.Project(cols...)
		if !stage.UnionWith(next) {
			break
		}
	}
	// Apply the fixpoint relation to the argument terms like an atom.
	atomEnv := ev.env.WithRelation(fp.Rel, stage)
	inner := &evaluator{env: atomEnv, ctl: ev.ctl, adom: ev.adom}
	return inner.evalAtom(&logic.Atom{Rel: fp.Rel, Args: fp.Args})
}

// SortedVars returns a copy of vs sorted by name; useful when asserting
// evaluation results in tests.
func SortedVars(vs []logic.Var) []logic.Var {
	out := append([]logic.Var{}, vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// projectTo reorders/restricts bindings to exactly the given variables
// (which must all be present).
func (ev *evaluator) projectTo(b *Bindings, vars []logic.Var) *Bindings {
	idx := b.varIndex()
	cols := make([]int, len(vars))
	for i, v := range vars {
		cols[i] = idx[v]
	}
	return &Bindings{Vars: append([]logic.Var{}, vars...), Rel: b.Rel.Project(cols...)}
}

// evalConj evaluates a flattened conjunction with a filter strategy:
// positive conjuncts are joined in order; (in)equalities and negations
// whose variables are already bound are applied as row filters or
// anti-joins instead of being materialized over the active domain.
func (ev *evaluator) evalConj(conjuncts []logic.Formula) (*Bindings, error) {
	cur := unitBindings()
	var pending []logic.Formula
	for _, c := range conjuncts {
		if isFilter(c) {
			pending = append(pending, c)
			continue
		}
		b, err := ev.eval(c)
		if err != nil {
			return nil, err
		}
		cur = ev.join(cur, b)
	}
	// Apply filters; a filter whose variables are not covered binds (=)
	// or expands (≠, ¬) exactly the variables it is missing — it never
	// materializes an |adom|² binding set the way the old generic-join
	// fallback did (see coverFilter).
	for len(pending) > 0 {
		applied := false
		var rest []logic.Formula
		for _, f := range pending {
			covered := true
			idx := cur.varIndex()
			for _, v := range logic.FreeVars(f) {
				if _, ok := idx[v]; !ok {
					covered = false
					break
				}
			}
			if !covered {
				rest = append(rest, f)
				continue
			}
			var err error
			cur, err = ev.applyFilter(cur, f)
			if err != nil {
				return nil, err
			}
			applied = true
		}
		if !applied && len(rest) > 0 {
			var err error
			cur, err = ev.coverFilter(cur, rest[0])
			if err != nil {
				return nil, err
			}
			rest = rest[1:]
		}
		pending = rest
	}
	return cur, nil
}

// coverFilter applies a filter conjunct some of whose variables are not
// bound by cur. An equality binds its unbound side to the other side's
// value (row by row, or over the active domain when both sides are
// unbound variables); ≠ and ¬ expand only their missing variables over
// the active domain and then filter. The old fallback evaluated the
// filter standalone — |adom|² tuples for a two-variable (in)equality —
// and joined, which dominated evaluation on large domains.
func (ev *evaluator) coverFilter(cur *Bindings, f logic.Formula) (*Bindings, error) {
	if g, ok := f.(*logic.Eq); ok {
		return ev.coverEq(cur, g)
	}
	cur, err := ev.expandTo(cur, logic.FreeVars(f))
	if err != nil {
		return nil, err
	}
	return ev.applyFilter(cur, f)
}

// coverEq makes both terms of an equality bound and then filters.
func (ev *evaluator) coverEq(cur *Bindings, g *logic.Eq) (*Bindings, error) {
	for {
		idx := cur.varIndex()
		isBound := func(t logic.Term) bool {
			v, isVar := t.(logic.Var)
			if !isVar {
				return true
			}
			_, ok := idx[v]
			return ok
		}
		lb, rb := isBound(g.L), isBound(g.R)
		if lb && rb {
			return ev.applyFilter(cur, g)
		}
		if lb != rb {
			// Bind the unbound variable to the bound side's value.
			var uv logic.Var
			var src logic.Term
			if lb {
				uv, src = g.R.(logic.Var), g.L
			} else {
				uv, src = g.L.(logic.Var), g.R
			}
			out := newBindings(append(append([]logic.Var{}, cur.Vars...), uv))
			cur.Rel.EachUnordered(func(row value.Tuple) bool {
				var v value.V
				switch u := src.(type) {
				case logic.Const:
					v = value.V(u)
				case logic.Var:
					v = row[idx[u]]
				}
				out.Rel.Add(value.Concat(row, value.Tuple{v}))
				return true
			})
			cur = out
			continue
		}
		// Both sides are unbound variables (x=x or x=y): expand the left
		// over the active domain; the next round binds the right.
		var err error
		if cur, err = ev.expandTo(cur, []logic.Var{g.L.(logic.Var)}); err != nil {
			return nil, err
		}
	}
}

// applyFilter restricts cur by a covered filter conjunct.
func (ev *evaluator) applyFilter(cur *Bindings, f logic.Formula) (*Bindings, error) {
	idx := cur.varIndex()
	valOf := func(t logic.Term, row value.Tuple) value.V {
		switch u := t.(type) {
		case logic.Const:
			return value.V(u)
		case logic.Var:
			return row[idx[u]]
		}
		panic("eval: unknown term")
	}
	switch g := f.(type) {
	case *logic.Eq:
		out := &Bindings{Vars: cur.Vars, Rel: cur.Rel.Select(func(row value.Tuple) bool {
			return valOf(g.L, row) == valOf(g.R, row)
		})}
		return out, nil
	case *logic.Neq:
		out := &Bindings{Vars: cur.Vars, Rel: cur.Rel.Select(func(row value.Tuple) bool {
			return valOf(g.L, row) != valOf(g.R, row)
		})}
		return out, nil
	case *logic.Not:
		neg, err := ev.eval(g.F)
		if err != nil {
			return nil, err
		}
		if len(neg.Vars) == 0 {
			// Sentence: ¬g drops everything when g holds.
			if neg.Rel.Empty() {
				return cur, nil
			}
			return &Bindings{Vars: cur.Vars, Rel: relation.New(len(cur.Vars))}, nil
		}
		cols := make([]int, len(neg.Vars))
		for i, v := range neg.Vars {
			cols[i] = idx[v]
		}
		out := &Bindings{Vars: cur.Vars, Rel: cur.Rel.Select(func(row value.Tuple) bool {
			proj := make(value.Tuple, len(cols))
			for i, c := range cols {
				proj[i] = row[c]
			}
			return !neg.Rel.Contains(proj)
		})}
		return out, nil
	}
	return nil, fmt.Errorf("eval: %T is not a filter", f)
}
