package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/value"
)

func graphInstance(edges ...[2]string) *relation.Instance {
	s := relation.NewSchema().MustDeclare("E", 2)
	i := relation.NewInstance(s)
	for _, e := range edges {
		i.Add("E", e[0], e[1])
	}
	return i
}

var (
	x = logic.Var("x")
	y = logic.Var("y")
	z = logic.Var("z")
)

func TestAtomEval(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"}, [2]string{"b", "c"})
	env := NewEnv(inst)
	b, err := Eval(logic.R("E", x, y), env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 2 {
		t.Fatalf("E(x,y) = %s", b.Rel)
	}
}

func TestAtomRepeatedVar(t *testing.T) {
	inst := graphInstance([2]string{"a", "a"}, [2]string{"a", "b"})
	env := NewEnv(inst)
	b, err := Eval(logic.R("E", x, x), env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 1 || !b.Rel.Contains(value.Tuple{"a"}) {
		t.Fatalf("E(x,x) = %s", b.Rel)
	}
}

func TestAtomConstants(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"}, [2]string{"a", "c"})
	env := NewEnv(inst)
	b, err := Eval(logic.R("E", logic.Const("a"), y), env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 2 {
		t.Fatalf("E('a',y) = %s", b.Rel)
	}
	b, err = Eval(logic.R("E", logic.Const("zz"), y), env)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Rel.Empty() {
		t.Fatalf("E('zz',y) = %s", b.Rel)
	}
}

func TestConjunctionIsJoin(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"b", "d"})
	env := NewEnv(inst)
	// E(x,y) ∧ E(y,z): paths of length 2.
	f := logic.Conj(logic.R("E", x, y), logic.R("E", y, z))
	b, err := Eval(f, env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 2 {
		t.Fatalf("2-paths = %s over vars %v", b.Rel, b.Vars)
	}
}

func TestNegationActiveDomain(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"})
	env := NewEnv(inst)
	// ¬E(x,y) over adom {a,b}: 4 pairs minus 1.
	b, err := Eval(&logic.Not{F: logic.R("E", x, y)}, env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 3 {
		t.Fatalf("¬E = %s", b.Rel)
	}
}

func TestDisjunctionExpands(t *testing.T) {
	s := relation.NewSchema().MustDeclare("A", 1).MustDeclare("B", 1)
	inst := relation.NewInstance(s)
	inst.Add("A", "a")
	inst.Add("B", "b")
	env := NewEnv(inst)
	// A(x) ∨ B(y) over adom {a,b}: {(a,a),(a,b),(a,?)…} — every pair where
	// x∈A or y∈B: (a,a),(a,b),(b,b) and (a,b) dup → 3 pairs.
	f := logic.Disj(logic.R("A", x), logic.R("B", y))
	b, err := Eval(f, env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 3 {
		t.Fatalf("A(x)∨B(y) = %s over %v", b.Rel, b.Vars)
	}
}

func TestExistsProjects(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"}, [2]string{"a", "c"})
	env := NewEnv(inst)
	b, err := Eval(logic.Ex([]logic.Var{y}, logic.R("E", x, y)), env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 1 || !b.Rel.Contains(value.Tuple{"a"}) {
		t.Fatalf("∃y E(x,y) = %s", b.Rel)
	}
}

func TestForall(t *testing.T) {
	// ∀y E(x,y): x relates to every adom element.
	inst := graphInstance([2]string{"a", "a"}, [2]string{"a", "b"}, [2]string{"b", "a"})
	env := NewEnv(inst)
	b, err := Eval(logic.All([]logic.Var{y}, logic.R("E", x, y)), env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 1 || !b.Rel.Contains(value.Tuple{"a"}) {
		t.Fatalf("∀y E(x,y) = %s", b.Rel)
	}
}

func TestForallVacuous(t *testing.T) {
	// Over an empty instance with a constant in the formula, ∀x x='c'
	// holds because adom = {c}.
	s := relation.NewSchema()
	inst := relation.NewInstance(s)
	env := NewEnv(inst)
	ok, err := EvalSentence(logic.All([]logic.Var{x}, logic.EqT(x, logic.Const("c"))), env)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("∀x x='c' should hold over adom {c}")
	}
}

func TestEqNeq(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"})
	env := NewEnv(inst)
	b, err := Eval(logic.EqT(x, y), env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 2 { // (a,a),(b,b)
		t.Fatalf("x=y gives %s", b.Rel)
	}
	b, err = Eval(logic.NeqT(x, y), env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 2 { // (a,b),(b,a)
		t.Fatalf("x≠y gives %s", b.Rel)
	}
	b, err = Eval(logic.EqT(x, logic.Const("zz")), env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 1 || !b.Rel.Contains(value.Tuple{"zz"}) {
		t.Fatalf("x='zz' gives %s", b.Rel)
	}
	// x ≠ x is unsatisfiable.
	b, err = Eval(logic.NeqT(x, x), env)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Rel.Empty() {
		t.Fatalf("x≠x gives %s", b.Rel)
	}
}

func TestTruthConstants(t *testing.T) {
	env := NewEnv(relation.NewInstance(relation.NewSchema()))
	ok, err := EvalSentence(logic.True, env)
	if err != nil || !ok {
		t.Fatal("True should hold", err)
	}
	ok, err = EvalSentence(logic.False, env)
	if err != nil || ok {
		t.Fatal("False should not hold", err)
	}
}

func TestFixpointTransitiveClosure(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	env := NewEnv(inst)
	u, v, w := logic.Var("u"), logic.Var("v"), logic.Var("w")
	body := logic.Disj(
		logic.R("E", u, v),
		logic.Ex([]logic.Var{w}, logic.Conj(logic.R("S", u, w), logic.R("E", w, v))),
	)
	tc := &logic.Fixpoint{Rel: "S", Vars: []logic.Var{u, v}, Body: body, Args: []logic.Term{x, y}}
	b, err := Eval(tc, env)
	if err != nil {
		t.Fatal(err)
	}
	// TC of the chain a→b→c→d has 3+2+1 = 6 pairs.
	if b.Rel.Len() != 6 {
		t.Fatalf("TC = %s", b.Rel)
	}
	if !b.Rel.Contains(value.Tuple{"a", "d"}) {
		t.Fatalf("TC missing (a,d): %s", b.Rel)
	}
}

func TestFixpointAppliedToConstants(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"}, [2]string{"b", "c"})
	env := NewEnv(inst)
	u, v, w := logic.Var("u"), logic.Var("v"), logic.Var("w")
	body := logic.Disj(
		logic.R("E", u, v),
		logic.Ex([]logic.Var{w}, logic.Conj(logic.R("S", u, w), logic.R("E", w, v))),
	)
	reach := &logic.Fixpoint{Rel: "S", Vars: []logic.Var{u, v}, Body: body,
		Args: []logic.Term{logic.Const("a"), logic.Const("c")}}
	ok, err := EvalSentence(reach, env)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a should reach c")
	}
	unreach := &logic.Fixpoint{Rel: "S", Vars: []logic.Var{u, v}, Body: body,
		Args: []logic.Term{logic.Const("c"), logic.Const("a")}}
	ok, err = EvalSentence(unreach, env)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("c should not reach a")
	}
}

func TestRegisterShadowing(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"})
	reg := relation.FromRows([]string{"r1"})
	env := NewEnv(inst).WithRelation("Reg", reg)
	b, err := Eval(logic.R("Reg", x), env)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 1 || !b.Rel.Contains(value.Tuple{"r1"}) {
		t.Fatalf("Reg(x) = %s", b.Rel)
	}
	// Register values join the active domain.
	nb, err := Eval(&logic.Not{F: logic.R("Reg", x)}, env)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Rel.Len() != 2 { // adom {a,b,r1} minus {r1}
		t.Fatalf("¬Reg(x) = %s", nb.Rel)
	}
}

func TestUnknownRelationErrors(t *testing.T) {
	env := NewEnv(relation.NewInstance(relation.NewSchema()))
	if _, err := Eval(logic.R("Nope", x), env); err == nil {
		t.Fatal("expected error for unknown relation")
	}
}

func TestArityMismatchErrors(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"})
	env := NewEnv(inst)
	if _, err := Eval(logic.R("E", x), env); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestEvalQueryHeadOrder(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"})
	env := NewEnv(inst)
	q := logic.MustQuery([]logic.Var{y}, []logic.Var{x}, logic.R("E", x, y))
	rel, err := EvalQuery(q, env)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Contains(value.Tuple{"b", "a"}) {
		t.Fatalf("head order wrong: %s", rel)
	}
}

func TestEvalSentenceRejectsFreeVars(t *testing.T) {
	env := NewEnv(relation.NewInstance(relation.NewSchema().MustDeclare("E", 2)))
	if _, err := EvalSentence(logic.R("E", x, y), env); err == nil {
		t.Fatal("expected free-variable error")
	}
}

// Property: De Morgan — ¬(A(x) ∧ B(x)) ≡ ¬A(x) ∨ ¬B(x) on random unary
// instances.
func TestDeMorganProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := relation.NewSchema().MustDeclare("A", 1).MustDeclare("B", 1)
		inst := relation.NewInstance(s)
		for k := 0; k < 4; k++ {
			if rng.Intn(2) == 0 {
				inst.Add("A", string(value.Of(k)))
			}
			if rng.Intn(2) == 0 {
				inst.Add("B", string(value.Of(k)))
			}
		}
		inst.Add("A", "0") // keep adom nonempty
		env := NewEnv(inst)
		lhs, err := Eval(&logic.Not{F: logic.Conj(logic.R("A", x), logic.R("B", x))}, env)
		if err != nil {
			return false
		}
		rhs, err := Eval(logic.Disj(&logic.Not{F: logic.R("A", x)}, &logic.Not{F: logic.R("B", x)}), env)
		if err != nil {
			return false
		}
		return lhs.Rel.Equal(rhs.Rel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CQ evaluation is monotone — extending the instance never
// shrinks the result (the monotonicity used throughout Section 6).
func TestCQMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) *relation.Instance {
			s := relation.NewSchema().MustDeclare("E", 2)
			inst := relation.NewInstance(s)
			for k := 0; k < n; k++ {
				inst.Add("E", string(value.Of(rng.Intn(4))), string(value.Of(rng.Intn(4))))
			}
			return inst
		}
		small := mk(3)
		big := small.Clone()
		big.Add("E", string(value.Of(rng.Intn(4))), string(value.Of(rng.Intn(4))))
		q := logic.Conj(logic.R("E", x, y), logic.R("E", y, z), logic.NeqT(x, z))
		bs, err := Eval(q, NewEnv(small))
		if err != nil {
			return false
		}
		bb, err := Eval(q, NewEnv(big))
		if err != nil {
			return false
		}
		return bs.Rel.SubsetOf(bb.Rel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
