package eval

import (
	"fmt"
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/value"
)

// wideInstance builds an instance whose active domain has 500 values
// (relation D) of which a small relation A holds 5.
func wideInstance() *relation.Instance {
	s := relation.NewSchema().MustDeclare("A", 1).MustDeclare("D", 1)
	inst := relation.NewInstance(s)
	for i := 0; i < 500; i++ {
		inst.Add("D", fmt.Sprintf("v%03d", i))
	}
	for i := 0; i < 5; i++ {
		inst.Add("A", fmt.Sprintf("v%03d", i))
	}
	return inst
}

// TestConjUncoveredNeqNoBlowup pins the fix for the evalConj fallback:
// an inequality over a variable no positive conjunct binds used to be
// materialized as an |adom|² binding set (249,500 tuples here, ~750k
// allocations) and then joined. It must now expand only the missing
// variable per current row: 5·500 candidate rows, well under 100k
// allocations, on both the interpreter and the compiled-plan path.
func TestConjUncoveredNeqNoBlowup(t *testing.T) {
	inst := wideInstance()
	q := logic.MustQuery(logic.Vars("x"), logic.Vars("y"),
		logic.Conj(logic.R("A", logic.Var("x")), logic.NeqT(logic.Var("x"), logic.Var("y"))))
	for name, env := range map[string]*Env{
		"interpreter": NewEnv(inst).WithoutPlanner(),
		"plan":        NewEnv(inst),
	} {
		t.Run(name, func(t *testing.T) {
			got, err := EvalQuery(q, env)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != 5*499 {
				t.Fatalf("rows = %d, want %d", got.Len(), 5*499)
			}
			want, err := EvalQueryNaive(q, env)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatal("result differs from naive oracle")
			}
			allocs := testing.AllocsPerRun(3, func() {
				if _, err := EvalQuery(q, env); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 100_000 {
				t.Fatalf("EvalQuery allocated %.0f objects; the adom² fallback is back", allocs)
			}
		})
	}
}

// TestConjUncoveredEqBindsDirectly: an equality binding a fresh
// variable extends rows in place instead of sweeping the domain.
func TestConjUncoveredEqBindsDirectly(t *testing.T) {
	inst := wideInstance()
	q := logic.MustQuery(logic.Vars("x"), logic.Vars("y"),
		logic.Conj(logic.R("A", logic.Var("x")), logic.EqT(logic.Var("y"), logic.Var("x"))))
	env := NewEnv(inst).WithoutPlanner()
	got, err := EvalQuery(q, env)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Fatalf("rows = %d, want 5", got.Len())
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := EvalQuery(q, env); err != nil {
			t.Fatal(err)
		}
	})
	// Binding 5 rows must not scale with the 500-value domain (the old
	// path materialized the 500-row diagonal and joined).
	if allocs > 2_000 {
		t.Fatalf("EvalQuery allocated %.0f objects binding 5 rows", allocs)
	}
}

// TestDomainCachedOnDerivedEnvs pins the Env.Domain cache: repeated
// calls against an unchanged environment (including derived ones that
// add extra relations) return the same slice, and mutating an extra
// relation invalidates the cache.
func TestDomainCachedOnDerivedEnvs(t *testing.T) {
	inst := wideInstance()
	reg := relation.FromRows([]string{"r1"}, []string{"r2"})
	env := NewEnv(inst).WithRelation("Reg", reg)

	d1 := env.Domain(nil)
	d2 := env.Domain(nil)
	if len(d1) != 502 {
		t.Fatalf("domain size = %d, want 502", len(d1))
	}
	if &d1[0] != &d2[0] {
		t.Fatal("repeated Domain calls did not reuse the cached merge")
	}
	// WithControl derives an env with the same relations: same cache.
	if d3 := env.WithControl(nil).Domain(nil); &d1[0] != &d3[0] {
		t.Fatal("WithControl dropped the domain cache")
	}
	// Constants already in the domain keep the cached slice; new ones
	// produce a fresh merge.
	if dc := env.Domain([]value.V{"r1"}); &d1[0] != &dc[0] {
		t.Fatal("subsumed constants forced a re-merge")
	}
	if dc := env.Domain([]value.V{"brandnew"}); len(dc) != 503 {
		t.Fatalf("constant not merged: %d values", len(dc))
	}
	// Mutating the extra relation must invalidate the cached merge.
	reg.Insert(value.Tuple{"r3"})
	d4 := env.Domain(nil)
	if len(d4) != 503 {
		t.Fatalf("domain stale after extra-relation mutation: %d values", len(d4))
	}
	reg.Delete(value.Tuple{"r3"})
	if d5 := env.Domain(nil); len(d5) != 502 {
		t.Fatalf("domain stale after deletion: %d values", len(d5))
	}
}
