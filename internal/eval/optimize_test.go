package eval

import (
	"math/rand"
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/value"
)

// randomFO builds a random FO formula of bounded depth over relations
// A(1) and E(2) with variables x, y, z.
func randomFO(rng *rand.Rand, depth int) logic.Formula {
	vars := []logic.Var{"x", "y", "z"}
	v := func() logic.Var { return vars[rng.Intn(len(vars))] }
	term := func() logic.Term {
		if rng.Intn(4) == 0 {
			return logic.Const(value.Of(rng.Intn(3)))
		}
		return v()
	}
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return logic.R("A", term())
		case 1:
			return logic.R("E", term(), term())
		case 2:
			return logic.EqT(term(), term())
		default:
			return logic.NeqT(term(), term())
		}
	}
	switch rng.Intn(6) {
	case 0:
		return &logic.And{L: randomFO(rng, depth-1), R: randomFO(rng, depth-1)}
	case 1:
		return &logic.Or{L: randomFO(rng, depth-1), R: randomFO(rng, depth-1)}
	case 2:
		return &logic.Not{F: randomFO(rng, depth-1)}
	case 3:
		return logic.Ex([]logic.Var{v()}, randomFO(rng, depth-1))
	case 4:
		return logic.All([]logic.Var{v()}, randomFO(rng, depth-1))
	default:
		return randomFO(rng, 0)
	}
}

// TestOptimizedMatchesNaive is the key property: the NNF/filter-join
// evaluator agrees with the direct active-domain evaluator on random FO
// formulas and instances.
func TestOptimizedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := relation.NewSchema().MustDeclare("A", 1).MustDeclare("E", 2)
	for trial := 0; trial < 300; trial++ {
		inst := relation.NewInstance(s)
		for k := 0; k < rng.Intn(4); k++ {
			inst.Add("A", string(value.Of(rng.Intn(3))))
		}
		for k := 0; k < rng.Intn(5); k++ {
			inst.Add("E", string(value.Of(rng.Intn(3))), string(value.Of(rng.Intn(3))))
		}
		inst.Add("A", "0") // keep the domain nonempty
		f := randomFO(rng, 1+rng.Intn(2))
		env := NewEnv(inst)
		fast, err1 := Eval(f, env)
		slow, err2 := EvalNaive(f, env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v on %s", trial, err1, err2, f)
		}
		if err1 != nil {
			continue
		}
		// Align columns before comparing.
		if len(fast.Vars) != len(slow.Vars) {
			t.Fatalf("trial %d: var sets differ: %v vs %v on %s", trial, fast.Vars, slow.Vars, f)
		}
		idx := map[logic.Var]int{}
		for i, v := range slow.Vars {
			idx[v] = i
		}
		cols := make([]int, len(fast.Vars))
		for i, v := range fast.Vars {
			c, ok := idx[v]
			if !ok {
				t.Fatalf("trial %d: var %s missing in naive result on %s", trial, v, f)
			}
			cols[i] = c
		}
		aligned := slow.Rel.Project(cols...)
		if !fast.Rel.Equal(aligned) {
			t.Fatalf("trial %d: %s\n optimized %s\n naive     %s\n instance %s",
				trial, f, fast.Rel, aligned, inst)
		}
	}
}

func TestPushNegShape(t *testing.T) {
	x := logic.Var("x")
	// ¬(A(x) ∧ ¬E(x,x)) → ¬A(x) ∨ E(x,x)
	f := &logic.Not{F: logic.Conj(logic.R("A", x), &logic.Not{F: logic.R("E", x, x)})}
	g := pushNeg(f)
	if g.String() != "(!A(x) | E(x,x))" {
		t.Fatalf("pushNeg = %s", g)
	}
	// ¬∀x ¬A(x) → ∃x A(x)
	f2 := &logic.Not{F: logic.All([]logic.Var{x}, &logic.Not{F: logic.R("A", x)})}
	if g2 := pushNeg(f2); g2.String() != "exists x. A(x)" {
		t.Fatalf("pushNeg = %s", g2)
	}
	// (In)equalities flip.
	f3 := &logic.Not{F: logic.EqT(x, logic.Const("c"))}
	if g3 := pushNeg(f3); g3.String() != "x!='c'" {
		t.Fatalf("pushNeg = %s", g3)
	}
}
