package eval

import (
	"context"
	"errors"
	"testing"

	"ptx/internal/logic"
	"ptx/internal/runctl"
)

// tcFixpoint is the transitive-closure fixpoint over E, the canonical
// IFP workload: it needs one iteration per chain hop plus one to
// stabilize.
func tcFixpoint() *logic.Fixpoint {
	u, v, w := logic.Var("u"), logic.Var("v"), logic.Var("w")
	body := logic.Disj(
		logic.R("E", u, v),
		logic.Ex([]logic.Var{w}, logic.Conj(logic.R("S", u, w), logic.R("E", w, v))),
	)
	return &logic.Fixpoint{Rel: "S", Vars: []logic.Var{u, v}, Body: body, Args: []logic.Term{x, y}}
}

func chainN(n int) [][2]string {
	edges := make([][2]string, n)
	for i := range edges {
		edges[i] = [2]string{string(rune('a' + i)), string(rune('a' + i + 1))}
	}
	return edges
}

func TestFixpointContextCancel(t *testing.T) {
	inst := graphInstance(chainN(6)...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already done before evaluation starts
	env := NewEnv(inst).WithControl(runctl.New(ctx, runctl.Limits{}))
	_, err := Eval(tcFixpoint(), env)
	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("canceled fixpoint: got %v, want *runctl.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause should unwrap to context.Canceled, got %v", err)
	}
}

func TestFixpointIterationBudget(t *testing.T) {
	// TC over a 6-hop chain needs 6 productive iterations; cap at 2.
	inst := graphInstance(chainN(6)...)
	ctl := runctl.New(context.Background(), runctl.Limits{MaxFixpointIters: 2})
	env := NewEnv(inst).WithControl(ctl)
	_, err := Eval(tcFixpoint(), env)
	var be *runctl.ErrBudget
	if !errors.As(err, &be) {
		t.Fatalf("capped fixpoint: got %v, want *runctl.ErrBudget", err)
	}
	if be.Kind != runctl.BudgetFixpoint || be.Limit != 2 {
		t.Fatalf("budget kind/limit = %s/%d, want %s/2", be.Kind, be.Limit, runctl.BudgetFixpoint)
	}

	// A generous cap must not change the result.
	env2 := NewEnv(inst).WithControl(runctl.New(context.Background(), runctl.Limits{MaxFixpointIters: 100}))
	b, err := Eval(tcFixpoint(), env2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rel.Len() != 6*7/2 {
		t.Fatalf("TC size = %d, want 21", b.Rel.Len())
	}
}

func TestQuantifierExpansionCancel(t *testing.T) {
	// ∀u,v.¬E(u,v) forces a complement sweep over adom²; with enough
	// edges the per-tuple Tick (sampled every 256 calls) must observe a
	// context canceled before evaluation began.
	edges := make([][2]string, 0, 40)
	for i := 0; i < 40; i++ {
		edges = append(edges, chainN(41)[i])
	}
	inst := graphInstance(edges...)
	u, v := logic.Var("u"), logic.Var("v")
	f := &logic.Forall{Bound: []logic.Var{u, v}, F: &logic.Not{F: logic.R("E", u, v)}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := NewEnv(inst).WithControl(runctl.New(ctx, runctl.Limits{}))
	// EvalNaive uses the textbook ¬∃¬ route through complement; the
	// optimized path short-circuits too early to exercise the sweep.
	_, err := EvalNaive(f, env)
	var ce *runctl.ErrCanceled
	if !errors.As(err, &ce) {
		t.Fatalf("canceled quantifier sweep: got %v, want *runctl.ErrCanceled", err)
	}
}
