package eval

import (
	"sync"

	"ptx/internal/logic"
	"ptx/internal/plan"
)

// planCache maps *logic.Query to its compiled plan. Transducer queries
// are long-lived (built once per transducer, evaluated at thousands of
// nodes), so pointer identity is the natural key and entries are never
// evicted. A nil entry marks a query the planner cannot compile (e.g. a
// head that does not cover the formula's free variables); EvalQuery
// then stays on the interpreter.
var planCache sync.Map

func planFor(q *logic.Query) *plan.Plan {
	if v, ok := planCache.Load(q); ok {
		p, _ := v.(*plan.Plan)
		return p
	}
	p, err := plan.Compile(q)
	if err != nil {
		p = nil
	}
	actual, _ := planCache.LoadOrStore(q, p)
	ap, _ := actual.(*plan.Plan)
	return ap
}
