package eval

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ptx/internal/logic"
	"ptx/internal/lru"
	"ptx/internal/relation"
)

// Memo is a bounded, concurrency-safe memoization table for rule-query
// results. A publishing transducer is deterministic: the result of a
// rule query at a node is a function of only (query, register, database)
// — the same argument Proposition 1 uses to bound tree sizes — so over a
// fixed database the pair (query identity, register fingerprint) is a
// sound cache key. The relation-store families of Proposition 1 revisit
// the same configuration at exponentially many nodes, which is exactly
// where the memo pays off.
//
// Contract:
//
//   - one Memo serves evaluations over ONE immutable database instance
//     (in pt, the memo is per-run and dropped with the run);
//   - cached relations are returned by reference and must be treated as
//     immutable by every caller;
//   - failed evaluations are never stored (see EvalQueryMemo), so a
//     canceled, budget-exhausted or fault-injected run cannot poison
//     the cache for concurrently running siblings.
type Memo struct {
	mu  sync.Mutex
	lru *lru.Cache[*relation.Relation]
	ids map[*logic.Query]int64
	nid int64
	cap int

	// Staleness guard (see BindInstance): when bound, any version drift
	// of the instance flushes the table before the next Get or Put, so a
	// stale hit after a mutation is impossible even if a caller forgets
	// to invalidate.
	inst    *relation.Instance
	instVer uint64

	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	invalidated atomic.Int64
	flushes     atomic.Int64
}

// DefaultMemoSize bounds a memo when the caller passes a non-positive
// capacity. 64k entries keeps memory proportional to the number of
// distinct (query, register) configurations, never to tree size.
const DefaultMemoSize = 1 << 16

// NewMemo returns a memo holding at most capacity results (capacity ≤ 0
// selects DefaultMemoSize).
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoSize
	}
	m := &Memo{ids: make(map[*logic.Query]int64), cap: capacity}
	m.lru = lru.New[*relation.Relation](capacity, func(string, *relation.Relation) {
		m.evictions.Add(1)
	})
	return m
}

// BindInstance pins the memo to inst at its CURRENT version. From then
// on every Get and Put first compares inst.Version() against the pinned
// version: on drift the whole table is flushed (and a racing Put is
// dropped), making a stale hit after a mutation impossible. Callers that
// invalidate selectively (incr.View) re-pin via BindInstance after
// reconciling, which keeps the surviving entries.
func (m *Memo) BindInstance(inst *relation.Instance) {
	m.mu.Lock()
	m.inst = inst
	if inst != nil {
		m.instVer = inst.Version()
	}
	m.mu.Unlock()
}

// syncLocked enforces the BindInstance contract; it reports whether the
// table was already in sync (false means it was just flushed).
func (m *Memo) syncLocked() bool {
	if m.inst == nil {
		return true
	}
	v := m.inst.Version()
	if v == m.instVer {
		return true
	}
	m.invalidated.Add(int64(m.lru.Len()))
	m.flushes.Add(1)
	m.lru = lru.New[*relation.Relation](m.cap, func(string, *relation.Relation) {
		m.evictions.Add(1)
	})
	m.instVer = v
	return false
}

// Invalidate removes every cached entry whose query satisfies pred and
// returns how many entries were dropped. Use it after a database delta
// with pred matching the queries that reference mutated relations;
// entries for untouched queries survive and keep their hit rate.
func (m *Memo) Invalidate(pred func(*logic.Query) bool) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for q, id := range m.ids {
		if !pred(q) {
			continue
		}
		prefix := strconv.FormatInt(id, 10) + "|"
		n += m.lru.RemoveIf(func(k string) bool { return strings.HasPrefix(k, prefix) })
	}
	m.invalidated.Add(int64(n))
	return n
}

// InvalidateRelations drops every entry whose query mentions one of the
// named relations (the sound over-approximation of "result may have
// changed" for a delta touching exactly those relations).
func (m *Memo) InvalidateRelations(names []string) int {
	if len(names) == 0 {
		return 0
	}
	dirty := make(map[string]bool, len(names))
	for _, n := range names {
		dirty[n] = true
	}
	return m.Invalidate(func(q *logic.Query) bool {
		for _, rel := range logic.Relations(q.F) {
			if dirty[rel] {
				return true
			}
		}
		return false
	})
}

// key builds the cache key for (query identity, register fingerprint).
// Queries are identified by pointer: within one run the rule set is
// fixed, so pointer identity is stable and cheaper than hashing the
// formula rendering. Must be called with mu held.
func (m *Memo) key(q *logic.Query, regFP string) string {
	id, ok := m.ids[q]
	if !ok {
		m.nid++
		id = m.nid
		m.ids[q] = id
	}
	return strconv.FormatInt(id, 10) + "|" + regFP
}

// Get returns the cached result of q against a register with the given
// fingerprint, counting a hit or miss.
func (m *Memo) Get(q *logic.Query, regFP string) (*relation.Relation, bool) {
	m.mu.Lock()
	var (
		rel *relation.Relation
		ok  bool
	)
	if m.syncLocked() {
		rel, ok = m.lru.Get(m.key(q, regFP))
	}
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return rel, ok
}

// Put stores a successful result. Callers must never store a result
// produced by a failed (canceled, budget-exhausted, fault-injected)
// evaluation.
func (m *Memo) Put(q *logic.Query, regFP string, rel *relation.Relation) {
	m.mu.Lock()
	// A Put that races a mutation of the bound instance was computed
	// against a database state we can no longer identify — drop it.
	if m.syncLocked() {
		m.lru.Put(m.key(q, regFP), rel)
	}
	m.mu.Unlock()
}

// Stats reports cumulative hit/miss/eviction counts.
func (m *Memo) Stats() (hits, misses, evictions int64) {
	return m.hits.Load(), m.misses.Load(), m.evictions.Load()
}

// InvalidationStats reports how many entries Invalidate and version-drift
// flushes have dropped, and how many whole-table flushes occurred.
func (m *Memo) InvalidationStats() (entries, flushes int64) {
	return m.invalidated.Load(), m.flushes.Load()
}

// extraFingerprint canonically fingerprints the environment's extra
// relations (registers, fixpoint stages) — the only evaluation inputs
// that vary across nodes of one run. Names are sorted so the encoding
// is deterministic; each component is self-delimiting.
func (e *Env) extraFingerprint() string {
	if len(e.extra) == 0 {
		return ""
	}
	names := make([]string, 0, len(e.extra))
	for n := range e.extra {
		names = append(names, n)
	}
	sortStrings(names)
	var b []byte
	for _, n := range names {
		b = strconv.AppendInt(b, int64(len(n)), 10)
		b = append(b, ':')
		b = append(b, n...)
		k := e.extra[n].Key()
		b = strconv.AppendInt(b, int64(len(k)), 10)
		b = append(b, ':')
		b = append(b, k...)
	}
	return string(b)
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// EvalQueryMemo is EvalQuery through a memo: it returns the cached
// result when the (query, extra-relation fingerprint) pair has been
// evaluated before, and evaluates-then-stores otherwise. Errors are
// returned without caching. The returned relation is shared with the
// memo and must not be mutated.
func EvalQueryMemo(q *logic.Query, env *Env, m *Memo) (*relation.Relation, error) {
	fp := env.extraFingerprint()
	if rel, ok := m.Get(q, fp); ok {
		return rel, nil
	}
	rel, err := EvalQuery(q, env)
	if err != nil {
		return nil, err
	}
	m.Put(q, fp, rel)
	return rel, nil
}
