package eval

import (
	"ptx/internal/logic"
)

// pushNeg converts a formula to negation normal form: negation is
// pushed through ∧ ∨ ¬ ∃ ∀ and (in)equalities, stopping at relation
// atoms and fixpoints. Evaluating the NNF avoids complementing large
// intermediate relations: a ¬ in front of an 8-variable conjunction
// costs |adom|⁸ as a complement but only a small anti-join once pushed
// inward.
func pushNeg(f logic.Formula) logic.Formula {
	switch g := f.(type) {
	case *logic.Not:
		return negate(g.F)
	case *logic.And:
		return &logic.And{L: pushNeg(g.L), R: pushNeg(g.R)}
	case *logic.Or:
		return &logic.Or{L: pushNeg(g.L), R: pushNeg(g.R)}
	case *logic.Exists:
		return &logic.Exists{Bound: g.Bound, F: pushNeg(g.F)}
	case *logic.Forall:
		return &logic.Forall{Bound: g.Bound, F: pushNeg(g.F)}
	default:
		return f
	}
}

// negate returns an NNF formula equivalent to ¬f.
func negate(f logic.Formula) logic.Formula {
	switch g := f.(type) {
	case *logic.Truth:
		return &logic.Truth{B: !g.B}
	case *logic.Eq:
		return &logic.Neq{L: g.L, R: g.R}
	case *logic.Neq:
		return &logic.Eq{L: g.L, R: g.R}
	case *logic.Not:
		return pushNeg(g.F)
	case *logic.And:
		return &logic.Or{L: negate(g.L), R: negate(g.R)}
	case *logic.Or:
		return &logic.And{L: negate(g.L), R: negate(g.R)}
	case *logic.Exists:
		return &logic.Forall{Bound: g.Bound, F: negate(g.F)}
	case *logic.Forall:
		return &logic.Exists{Bound: g.Bound, F: negate(g.F)}
	default:
		// Atoms and fixpoints: negation stays in front.
		return &logic.Not{F: f}
	}
}

// flattenConj decomposes nested conjunctions into a list.
func flattenConj(f logic.Formula, out *[]logic.Formula) {
	if g, ok := f.(*logic.And); ok {
		flattenConj(g.L, out)
		flattenConj(g.R, out)
		return
	}
	*out = append(*out, f)
}

// isFilter reports whether a conjunct can be applied as a row filter
// once its free variables are bound by the positive part of the
// conjunction: (in)equalities and negations.
func isFilter(f logic.Formula) bool {
	switch f.(type) {
	case *logic.Eq, *logic.Neq, *logic.Not:
		return true
	}
	return false
}
