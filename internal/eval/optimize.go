package eval

import (
	"ptx/internal/logic"
)

// pushNeg converts a formula to negation normal form; the rewrite
// lives in logic.NNF so the compiled-plan layer shares it.
func pushNeg(f logic.Formula) logic.Formula { return logic.NNF(f) }

// negate returns an NNF formula equivalent to ¬f (logic.Negate).
func negate(f logic.Formula) logic.Formula { return logic.Negate(f) }

// flattenConj decomposes nested conjunctions into a list.
func flattenConj(f logic.Formula, out *[]logic.Formula) { logic.FlattenConj(f, out) }

// isFilter reports whether a conjunct can be applied as a row filter
// once its free variables are bound by the positive part of the
// conjunction: (in)equalities and negations.
func isFilter(f logic.Formula) bool {
	switch f.(type) {
	case *logic.Eq, *logic.Neq, *logic.Not:
		return true
	}
	return false
}
