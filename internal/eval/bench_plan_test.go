// BenchmarkPlanVsNaive quantifies the point of internal/plan: on a
// join-heavy query family the compiled path (hash joins, bound-prefix
// filters, interned keys) must beat the textbook active-domain
// evaluator by a wide margin. TestPlanSpeedupGuard pins the acceptance
// ratio (>=5x ns/op) so a planner regression fails CI rather than just
// drifting a chart.
package eval

import (
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/value"
)

// benchGraph builds a deterministic sparse digraph: a ring plus
// quadratic skip edges, 2n edges over n vertices. Dense enough that
// 3-way joins have real work, sparse enough that the naive evaluator
// finishes in benchmark time.
func benchGraph(n int) *relation.Instance {
	s := relation.NewSchema().MustDeclare("E", 2)
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.Add("E", string(value.Of(i)), string(value.Of((i+1)%n)))
		inst.Add("E", string(value.Of(i)), string(value.Of((i*i+3)%n)))
	}
	return inst
}

type planBenchCase struct {
	name string
	q    *logic.Query
}

// planBenchCases is the join-heavy family: a 3-hop path with an
// endpoint disequality (joins + a filter that the naive path turns
// into an adom-wide expansion) and a triangle (cyclic join graph, so
// join order matters).
func planBenchCases() []planBenchCase {
	x, y, z, w := logic.Var("x"), logic.Var("y"), logic.Var("z"), logic.Var("w")
	return []planBenchCase{
		{"path3-neq", logic.MustQuery([]logic.Var{x, w}, nil,
			logic.Ex([]logic.Var{y, z}, logic.Conj(
				logic.R("E", x, y), logic.R("E", y, z), logic.R("E", z, w),
				logic.NeqT(x, w))))},
		{"triangle", logic.MustQuery([]logic.Var{x}, nil,
			logic.Ex([]logic.Var{y, z}, logic.Conj(
				logic.R("E", x, y), logic.R("E", y, z), logic.R("E", z, x),
				logic.NeqT(x, y))))},
	}
}

func BenchmarkPlanVsNaive(b *testing.B) {
	env := NewEnv(benchGraph(48))
	for _, c := range planBenchCases() {
		b.Run("plan/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EvalQuery(c.q, env); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("naive/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EvalQueryNaive(c.q, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPlanSpeedupGuard pins the acceptance criterion: on every case of
// the join family, the compiled plan runs at least 5x faster than the
// naive active-domain evaluator (it also cross-checks the results are
// equal, so the guard cannot pass by computing the wrong answer fast).
func TestPlanSpeedupGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	env := NewEnv(benchGraph(48))
	for _, c := range planBenchCases() {
		t.Run(c.name, func(t *testing.T) {
			got, err := EvalQuery(c.q, env)
			if err != nil {
				t.Fatal(err)
			}
			want, err := EvalQueryNaive(c.q, env)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("plan and naive disagree on %s", c.name)
			}
			plan := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := EvalQuery(c.q, env); err != nil {
						b.Fatal(err)
					}
				}
			})
			naive := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := EvalQueryNaive(c.q, env); err != nil {
						b.Fatal(err)
					}
				}
			})
			ratio := float64(naive.NsPerOp()) / float64(plan.NsPerOp())
			t.Logf("%s: plan %d ns/op, naive %d ns/op, speedup %.1fx",
				c.name, plan.NsPerOp(), naive.NsPerOp(), ratio)
			if ratio < 5 {
				t.Fatalf("plan speedup below 5x: %.1fx (plan %d ns/op, naive %d ns/op)",
					ratio, plan.NsPerOp(), naive.NsPerOp())
			}
		})
	}
}
