package eval

import (
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
)

// A memo bound to its instance must never serve a hit computed before a
// mutation: Instance.Apply bumps the version, and the next Get flushes.
func TestMemoStaleHitAfterInsertImpossible(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"})
	q := logic.MustQuery(nil, []logic.Var{x, y}, logic.R("E", x, y))

	m := NewMemo(0)
	m.BindInstance(inst)

	r1, err := EvalQueryMemo(q, NewEnv(inst), m)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 1 {
		t.Fatalf("pre-delta result has %d tuples, want 1", r1.Len())
	}
	if _, err := EvalQueryMemo(q, NewEnv(inst), m); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := m.Stats(); hits != 1 {
		t.Fatalf("warm-up: hits = %d, want 1", hits)
	}

	eff, err := inst.Apply((&relation.Delta{}).Insert("E", "b", "c"))
	if err != nil || eff.Empty() {
		t.Fatalf("Apply: eff=%v err=%v", eff, err)
	}

	// Fresh Env (the Env caches the active domain); the memo must MISS
	// and recompute against the mutated instance.
	r2, err := EvalQueryMemo(q, NewEnv(inst), m)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Fatalf("post-delta result has %d tuples, want 2 — stale memo hit", r2.Len())
	}
	if hits, _, _ := m.Stats(); hits != 1 {
		t.Fatalf("post-delta evaluation hit the stale table (hits = %d)", hits)
	}
	if entries, flushes := m.InvalidationStats(); entries == 0 || flushes != 1 {
		t.Fatalf("invalidation stats = %d entries/%d flushes, want >0/1", entries, flushes)
	}
}

// A Put computed before a mutation but landing after it must be dropped,
// not stored under the new version.
func TestMemoDropsRacingPut(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"})
	q := logic.MustQuery(nil, []logic.Var{x, y}, logic.R("E", x, y))

	m := NewMemo(0)
	m.BindInstance(inst)

	stale, err := EvalQuery(q, NewEnv(inst))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Apply((&relation.Delta{}).Insert("E", "b", "c")); err != nil {
		t.Fatal(err)
	}
	m.Put(q, "", stale) // simulates an in-flight run finishing post-delta
	if rel, ok := m.Get(q, ""); ok && rel.Len() != 2 {
		t.Fatalf("stale racing Put was served: %v", rel)
	}
}

// Selective invalidation drops exactly the entries whose queries mention
// a mutated relation; re-binding afterwards keeps the survivors live.
func TestMemoInvalidateRelationsSelective(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"})
	inst.Schema().MustDeclare("A", 1)
	inst.SetRel("A", relation.New(1))
	inst.Add("A", "a")

	qe := logic.MustQuery(nil, []logic.Var{x, y}, logic.R("E", x, y))
	qa := logic.MustQuery(nil, []logic.Var{x}, logic.R("A", x))

	m := NewMemo(0)
	m.BindInstance(inst)
	if _, err := EvalQueryMemo(qe, NewEnv(inst), m); err != nil {
		t.Fatal(err)
	}
	if _, err := EvalQueryMemo(qa, NewEnv(inst), m); err != nil {
		t.Fatal(err)
	}

	eff, err := inst.Apply((&relation.Delta{}).Insert("E", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if n := m.InvalidateRelations(eff.Rels()); n != 1 {
		t.Fatalf("invalidated %d entries, want exactly the E query", n)
	}
	m.BindInstance(inst) // reconcile: survivors stay valid

	if _, err := EvalQueryMemo(qa, NewEnv(inst), m); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := m.Stats()
	if hits != 1 {
		t.Fatalf("A-query should survive invalidation (hits=%d misses=%d)", hits, misses)
	}
	r, err := EvalQueryMemo(qe, NewEnv(inst), m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("E-query result has %d tuples after invalidation, want 2", r.Len())
	}
}
