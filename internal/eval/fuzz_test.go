package eval

import (
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/value"
)

// fuzzDecoder turns a fuzz byte stream into a small instance and a
// random CQ/FO formula, deterministically: the same bytes always yield
// the same workload, so crashes are replayable from the corpus.
type fuzzDecoder struct {
	data []byte
	pos  int
}

func (d *fuzzDecoder) byte() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// instance decodes a few A(1) and E(2) facts over the domain {0,1,2}.
// One decode path leaves the instance (and hence the active domain)
// completely empty — evaluation over an empty domain is a standing
// edge case for complements, quantifier expansion and fixpoints.
func (d *fuzzDecoder) instance(s *relation.Schema) *relation.Instance {
	inst := relation.NewInstance(s)
	if d.byte()%5 == 0 {
		return inst
	}
	for k := int(d.byte()) % 4; k > 0; k-- {
		inst.Add("A", string(value.Of(int(d.byte())%3)))
	}
	for k := int(d.byte()) % 5; k > 0; k-- {
		inst.Add("E", string(value.Of(int(d.byte())%3)), string(value.Of(int(d.byte())%3)))
	}
	inst.Add("A", "0") // keep the active domain nonempty
	return inst
}

// formula decodes a CQ/FO formula of bounded depth over A, E, x/y/z and
// the constants 0..2. Depth bounds keep the naive evaluator's
// complement/quantifier blowup affordable per fuzz exec.
func (d *fuzzDecoder) formula(depth int) logic.Formula {
	vars := []logic.Var{"x", "y", "z"}
	v := func() logic.Var { return vars[int(d.byte())%len(vars)] }
	term := func() logic.Term {
		if d.byte()%4 == 0 {
			return logic.Const(value.Of(int(d.byte()) % 3))
		}
		return v()
	}
	if depth <= 0 {
		switch d.byte() % 5 {
		case 0:
			return logic.R("A", term())
		case 1:
			return logic.R("E", term(), term())
		case 2:
			return logic.EqT(term(), term())
		case 3:
			return logic.NeqT(term(), term())
		default:
			return logic.True
		}
	}
	switch d.byte() % 9 {
	case 0:
		return &logic.And{L: d.formula(depth - 1), R: d.formula(depth - 1)}
	case 1:
		return &logic.Or{L: d.formula(depth - 1), R: d.formula(depth - 1)}
	case 2:
		return &logic.Not{F: d.formula(depth - 1)}
	case 3:
		return logic.Ex([]logic.Var{v()}, d.formula(depth-1))
	case 4:
		return logic.All([]logic.Var{v()}, d.formula(depth-1))
	case 5:
		// Transitive closure of E applied to decoded terms: the
		// canonical recursive fixpoint (IFP).
		u, w, s := logic.Var("u"), logic.Var("w"), logic.Var("s")
		return &logic.Fixpoint{
			Rel:  "S",
			Vars: []logic.Var{u, w},
			Body: &logic.Or{
				L: logic.R("E", u, w),
				R: logic.Ex([]logic.Var{s},
					logic.Conj(logic.R("S", u, s), logic.R("E", s, w))),
			},
			Args: []logic.Term{term(), term()},
		}
	case 6:
		// Non-recursive fixpoint over a decoded body: converges in one
		// or two iterations but exercises stage bookkeeping, variable
		// expansion inside the body and frees escaping the binder.
		u := logic.Var("u")
		return &logic.Fixpoint{
			Rel:  "S",
			Vars: []logic.Var{u},
			Body: &logic.Or{L: logic.R("A", u), R: d.formula(0)},
			Args: []logic.Term{term()},
		}
	default:
		return d.formula(0)
	}
}

// FuzzDifferentialEval is the differential oracle of this package: on
// every decoded (instance, formula) pair, the compiled-plan evaluator
// (EvalQuery), the optimized interpreter (EvalQuery after
// WithoutPlanner: NNF + filtered joins), the textbook active-domain
// evaluator (EvalQueryNaive, ¬ via complement, ∀ via ¬∃¬) and the
// memoized evaluator (EvalQueryMemo, twice — the second call exercising
// the hit path) must agree exactly. The grammar includes fixpoints and
// one decode path yields an entirely empty instance.
func FuzzDifferentialEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 2, 4, 0, 1, 1, 2, 2, 0, 0, 0, 1, 2, 3, 4, 5})
	f.Add([]byte("differential eval seed: quantifiers and negation"))
	f.Add([]byte{1, 2, 2, 1, 0, 2, 4, 3, 3, 2, 1, 0, 255, 128, 64, 32, 16, 8})
	// Seeds biased toward the fixpoint grammar cases (5 and 6 mod 9)
	// and the empty-instance decode path (first byte ≡ 0 mod 5).
	f.Add([]byte{1, 2, 1, 0, 1, 1, 2, 5, 1, 0, 5, 2, 1, 14, 0, 1, 2, 3})
	f.Add([]byte{0, 5, 1, 1, 14, 2, 0, 1, 5, 0, 2, 1})
	f.Add([]byte{5, 3, 1, 2, 0, 4, 1, 2, 1, 0, 0, 5, 14, 5, 14, 2, 2, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &fuzzDecoder{data: data}
		s := relation.NewSchema().MustDeclare("A", 1).MustDeclare("E", 2)
		inst := d.instance(s)
		fla := d.formula(1 + int(d.byte())%3)
		free := SortedVars(logic.FreeVars(fla))
		q, err := logic.NewQuery(nil, free, fla)
		if err != nil {
			t.Skip() // e.g. sentences with empty heads
		}
		env := NewEnv(inst)

		opt, err1 := EvalQuery(q, env)
		naive, err2 := EvalQueryNaive(q, env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: optimized %v, naive %v on %s", err1, err2, fla)
		}
		if err1 != nil {
			return
		}
		if !opt.Equal(naive) {
			t.Fatalf("optimized and naive disagree on %s\n optimized %s\n naive     %s\n instance %s",
				fla, opt, naive, inst)
		}
		interp, err := EvalQuery(q, env.WithoutPlanner())
		if err != nil {
			t.Fatalf("interpreter arm: %v on %s", err, fla)
		}
		if !interp.Equal(naive) {
			t.Fatalf("interpreter and naive disagree on %s\n interp %s\n naive  %s\n instance %s",
				fla, interp, naive, inst)
		}

		m := NewMemo(0)
		cold, err := EvalQueryMemo(q, env, m)
		if err != nil {
			t.Fatalf("memo (cold): %v on %s", err, fla)
		}
		warm, err := EvalQueryMemo(q, env, m)
		if err != nil {
			t.Fatalf("memo (warm): %v on %s", err, fla)
		}
		if !cold.Equal(opt) || !warm.Equal(opt) {
			t.Fatalf("memoized evaluation disagrees on %s", fla)
		}
		if hits, _, _ := m.Stats(); hits != 1 {
			t.Fatalf("second memo call should hit (hits=%d) on %s", hits, fla)
		}
	})
}
