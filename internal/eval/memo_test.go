package eval

import (
	"context"
	"errors"
	"testing"

	"ptx/internal/logic"
	"ptx/internal/relation"
	"ptx/internal/runctl"
	"ptx/internal/value"
)

func TestMemoHitMissEvict(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"}, [2]string{"b", "c"})
	env := NewEnv(inst)
	q1 := logic.MustQuery(nil, []logic.Var{x, y}, logic.R("E", x, y))
	q2 := logic.MustQuery(nil, []logic.Var{x}, logic.Ex([]logic.Var{y}, logic.R("E", x, y)))

	m := NewMemo(1) // capacity 1 forces eviction between q1 and q2
	r1a, err := EvalQueryMemo(q1, env, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalQueryMemo(q2, env, m); err != nil {
		t.Fatal(err)
	}
	// q1 was evicted by q2; re-evaluating is a miss that re-stores.
	r1b, err := EvalQueryMemo(q1, env, m)
	if err != nil {
		t.Fatal(err)
	}
	if !r1a.Equal(r1b) {
		t.Fatal("re-evaluated result differs")
	}
	hits, misses, evictions := m.Stats()
	if hits != 0 || misses != 3 || evictions != 2 {
		t.Errorf("stats = %d/%d/%d, want 0 hits, 3 misses, 2 evictions", hits, misses, evictions)
	}

	// With room for both, the second round is all hits — and returns the
	// identical relation by reference.
	m = NewMemo(0)
	first, _ := EvalQueryMemo(q1, env, m)
	second, err := EvalQueryMemo(q1, env, m)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("hit should return the cached relation by reference")
	}
	if hits, misses, _ := m.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d, want 1 hit, 1 miss", hits, misses)
	}
}

// TestMemoDistinguishesRegisters: the fingerprint must separate
// environments whose extra relations differ, and identify ones whose
// extra relations are Equal regardless of insertion order.
func TestMemoDistinguishesRegisters(t *testing.T) {
	inst := graphInstance([2]string{"a", "b"}, [2]string{"b", "c"})
	q := logic.MustQuery(nil, []logic.Var{x},
		logic.Ex([]logic.Var{y}, logic.Conj(logic.R("Reg", y), logic.R("E", y, x))))

	regA := relation.New(1)
	regA.Add(value.Tuple{"a"})
	regB := relation.New(1)
	regB.Add(value.Tuple{"b"})
	m := NewMemo(0)

	ra, err := EvalQueryMemo(q, NewEnv(inst).WithRelation("Reg", regA), m)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := EvalQueryMemo(q, NewEnv(inst).WithRelation("Reg", regB), m)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Equal(rb) {
		t.Fatal("different registers must not collide in the memo")
	}
	if hits, misses, _ := m.Stats(); hits != 0 || misses != 2 {
		t.Errorf("stats = %d/%d, want 0 hits, 2 misses", hits, misses)
	}

	// Same register contents built in a different insertion order: hit.
	regA2 := relation.New(1)
	regA2.Add(value.Tuple{"a"})
	if _, err := EvalQueryMemo(q, NewEnv(inst).WithRelation("Reg", regA2), m); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := m.Stats(); hits != 1 {
		t.Error("equal register contents must hit regardless of relation identity")
	}
}

// TestMemoErrorNotCached: a failed evaluation (here: fixpoint budget
// exhaustion) must leave no entry behind; the same key evaluated later
// under a healthy environment succeeds and stores normally.
func TestMemoErrorNotCached(t *testing.T) {
	u, v, w := logic.Var("u"), logic.Var("v"), logic.Var("w")
	body := logic.Disj(
		logic.R("E", u, v),
		logic.Ex([]logic.Var{w}, logic.Conj(logic.R("S", u, w), logic.R("E", w, v))),
	)
	fp := &logic.Fixpoint{Rel: "S", Vars: []logic.Var{u, v}, Body: body, Args: []logic.Term{x, y}}
	q := logic.MustQuery(nil, []logic.Var{x, y}, fp)
	inst := graphInstance(chainN(6)...)

	m := NewMemo(0)
	capped := NewEnv(inst).WithControl(runctl.New(context.Background(), runctl.Limits{MaxFixpointIters: 2}))
	_, err := EvalQueryMemo(q, capped, m)
	var be *runctl.ErrBudget
	if !errors.As(err, &be) {
		t.Fatalf("capped fixpoint: got %v, want budget error", err)
	}

	healthy := NewEnv(inst)
	got, err := EvalQueryMemo(q, healthy, m)
	if err != nil {
		t.Fatalf("healthy run after failed one: %v", err)
	}
	want, err := EvalQuery(q, healthy)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("result after failed attempt differs from direct evaluation")
	}
	// Both attempts were misses (the failure stored nothing), and the
	// successful one is now retrievable.
	if hits, misses, _ := m.Stats(); hits != 0 || misses != 2 {
		t.Errorf("stats = %d/%d, want 0 hits, 2 misses", hits, misses)
	}
	if _, err := EvalQueryMemo(q, healthy, m); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := m.Stats(); hits != 1 {
		t.Error("successful result should now hit")
	}
}
