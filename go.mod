module ptx

go 1.22
